#include "membership/onehop.hpp"

#include <algorithm>

#include "membership/gossip.hpp"  // record wire helpers
#include "obs/capacity/census.hpp"

namespace p2panon::membership {

namespace {
constexpr std::uint8_t kKindEventToLeader = 1;     // observer -> own leader
constexpr std::uint8_t kKindEventInterLeader = 2;  // leader -> other leaders
constexpr std::uint8_t kKindKeepalive = 3;         // leader -> unit members
constexpr std::uint8_t kKindLeaderAnnounce = 4;    // new leader -> unit+peers

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

OneHopMembership::OneHopMembership(sim::Simulator& simulator,
                                   net::Demux& demux,
                                   churn::ChurnModel& churn_model,
                                   OneHopConfig config, Rng rng)
    : simulator_(simulator),
      demux_(demux),
      churn_(churn_model),
      config_(config),
      rng_(rng) {
  const std::size_t n = churn_.num_nodes();
  config_.units = std::max<std::size_t>(1, std::min(config_.units, n));
  caches_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) caches_.emplace_back(n);
  pending_unit_events_.resize(config_.units);
}

std::size_t OneHopMembership::unit_of(NodeId node) const {
  const std::size_t n = caches_.size();
  const std::size_t unit_size = (n + config_.units - 1) / config_.units;
  return std::min<std::size_t>(node / unit_size, config_.units - 1);
}

std::pair<std::size_t, std::size_t> OneHopMembership::unit_range(
    std::size_t unit) const {
  const std::size_t n = caches_.size();
  const std::size_t unit_size = (n + config_.units - 1) / config_.units;
  const std::size_t begin = unit * unit_size;
  return {begin, std::min(n, begin + unit_size)};
}

NodeId OneHopMembership::unit_leader(std::size_t unit) const {
  const auto [begin, end] = unit_range(unit);
  for (std::size_t node = begin; node < end; ++node) {
    if (churn_.is_up(static_cast<NodeId>(node))) {
      return static_cast<NodeId>(node);
    }
  }
  return kInvalidNode;
}

NodeId OneHopMembership::believed_leader(NodeId observer,
                                         std::size_t unit) const {
  const auto [begin, end] = unit_range(unit);
  for (std::size_t node = begin; node < end; ++node) {
    const NodeId id = static_cast<NodeId>(node);
    if (id == observer) {
      // A node always knows its own state.
      if (churn_.is_up(observer)) return id;
      continue;
    }
    const auto* entry = caches_[observer].find(id);
    if (entry != nullptr && entry->alive) return id;
  }
  return kInvalidNode;
}

void OneHopMembership::start() {
  if (config_.seed_full_membership) {
    const SimTime now = simulator_.now();
    const std::size_t n = caches_.size();
    for (NodeId owner = 0; owner < n; ++owner) {
      for (NodeId subject = 0; subject < n; ++subject) {
        if (subject == owner) continue;
        if (churn_.is_up(subject)) {
          caches_[owner].heard_directly(subject, 0, now);
        } else {
          caches_[owner].heard_left_directly(subject, now);
        }
      }
    }
  }

  demux_.set_handler(net::Channel::kGossip,
                     [this](NodeId from, NodeId to, ByteView payload) {
                       handle_message(from, to, payload);
                     });

  churn_.subscribe([this](NodeId node, bool up, SimTime when) {
    on_churn(node, up, when);
  });

  if (config_.deterministic_failover) {
    // Failover mode replaces the per-unit ground-truth keepalive tasks
    // with a per-node watchdog: whoever believes itself leader does
    // keepalive duty (including empty heartbeats, so silence is a
    // signal), and members time the leader out after leader_miss_threshold
    // intervals. Task phases come from deterministic per-node streams.
    const std::size_t n = caches_.size();
    const std::uint64_t base = rng_.next_u64();
    node_rngs_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      node_rngs_.emplace_back(base ^
                              mix64(static_cast<std::uint64_t>(i) + 1));
    }
    last_leader_heard_.assign(n, simulator_.now());
    static const auto kWatchdogEvent =
        obs::capacity::event_type("onehop.watchdog");
    watchdog_tasks_.reserve(n);
    for (NodeId node = 0; node < n; ++node) {
      auto task = std::make_unique<sim::PeriodicTask>(
          simulator_, config_.keepalive_interval,
          [this, node] { watchdog_tick(node); }, kWatchdogEvent);
      task->start_at(
          simulator_.now() +
          static_cast<SimDuration>(node_rngs_[node].next_below(
              static_cast<std::uint64_t>(config_.keepalive_interval))));
      watchdog_tasks_.push_back(std::move(task));
    }
    return;
  }

  static const auto kKeepaliveEvent =
      obs::capacity::event_type("onehop.keepalive");
  keepalive_tasks_.reserve(config_.units);
  for (std::size_t unit = 0; unit < config_.units; ++unit) {
    auto task = std::make_unique<sim::PeriodicTask>(
        simulator_, config_.keepalive_interval,
        [this, unit] { keepalive_tick(unit); }, kKeepaliveEvent);
    task->start_at(simulator_.now() +
                   static_cast<SimDuration>(rng_.next_below(
                       static_cast<std::uint64_t>(config_.keepalive_interval))));
    keepalive_tasks_.push_back(std::move(task));
  }
}

SimDuration OneHopMembership::own_uptime(NodeId node) const {
  return from_seconds(churn_.alive_seconds(node, simulator_.now()));
}

void OneHopMembership::send_snapshot(NodeId leader, NodeId joiner) {
  const SimTime now = simulator_.now();
  const auto known = caches_[leader].known_nodes();
  Bytes msg;
  std::vector<std::pair<NodeId, LivenessInfo>> records;
  for (NodeId subject : known) {
    if (subject == joiner) continue;
    const auto obs = caches_[leader].observation(subject, now);
    if (obs.has_value()) records.emplace_back(subject, *obs);
    if (records.size() == 512) {
      // Chunk very large snapshots.
      msg.clear();
      msg.push_back(kKindKeepalive);
      put_u16be(msg, static_cast<std::uint16_t>(records.size()));
      for (const auto& [s, info] : records) encode_record(msg, s, info);
      demux_.send(net::Channel::kGossip, leader, joiner, msg);
      ++messages_sent_;
      bytes_sent_ += msg.size();
      records.clear();
    }
  }
  if (!records.empty()) {
    msg.clear();
    msg.push_back(kKindKeepalive);
    put_u16be(msg, static_cast<std::uint16_t>(records.size()));
    for (const auto& [s, info] : records) encode_record(msg, s, info);
    demux_.send(net::Channel::kGossip, leader, joiner, msg);
    ++messages_sent_;
    bytes_sent_ += msg.size();
  }
}

void OneHopMembership::send_event(NodeId from, NodeId to, std::uint8_t kind,
                                  NodeId subject, const LivenessInfo& info) {
  Bytes msg;
  msg.reserve(1 + kRecordWireSize);
  msg.push_back(kind);
  put_u16be(msg, 1);
  encode_record(msg, subject, info);
  demux_.send(net::Channel::kGossip, from, to, msg);
  ++messages_sent_;
  bytes_sent_ += msg.size();
}

void OneHopMembership::on_churn(NodeId node, bool up, SimTime when) {
  (void)when;
  if (up) {
    // A rejoiner's leader-silence clock restarts: it has not heard anyone
    // while down, and must not fail its leader over before the first
    // keepalive has had a chance to arrive.
    if (config_.deterministic_failover) {
      last_leader_heard_[node] = simulator_.now();
    }
    // The joiner reports to its unit leader directly.
    deliver_event(node, node);
    return;
  }
  // A leave is noticed by the unit leader's keepalive machinery after a
  // short detection delay.
  const SimDuration delay =
      config_.detection_delay_min +
      static_cast<SimDuration>(rng_.next_below(static_cast<std::uint64_t>(
          config_.detection_delay_max - config_.detection_delay_min + 1)));
  static const auto kDetectEvent = obs::capacity::event_type("onehop.detect");
  simulator_.schedule_after(
      delay,
      [this, node] {
        if (churn_.is_up(node)) return;
        const NodeId leader = unit_leader(unit_of(node));
        if (leader == kInvalidNode) return;
        caches_[leader].heard_left_directly(node, simulator_.now());
        deliver_event(leader, node);
      },
      kDetectEvent);
}

void OneHopMembership::deliver_event(NodeId observer, NodeId subject) {
  // Failover mode routes by the observer's *belief*; ground-truth mode by
  // churn state (the seed's simulator shortcut).
  const std::size_t own_unit = unit_of(observer);
  const NodeId leader = config_.deterministic_failover
                            ? believed_leader(observer, own_unit)
                            : unit_leader(own_unit);
  if (leader == kInvalidNode) return;
  LivenessInfo info;
  if (observer == subject) {
    info.alive = true;
    info.dt_alive = own_uptime(subject);
    info.dt_since = 0;
  } else {
    const auto obs = caches_[observer].observation(subject, simulator_.now());
    if (!obs.has_value()) return;
    info = *obs;
  }
  if (leader == observer) {
    // Already at the leader: fan out to other unit leaders.
    for (std::size_t unit = 0; unit < config_.units; ++unit) {
      const NodeId other = config_.deterministic_failover
                               ? believed_leader(observer, unit)
                               : unit_leader(unit);
      if (other == kInvalidNode || other == leader) continue;
      send_event(leader, other, kKindEventInterLeader, subject, info);
    }
    pending_unit_events_[unit_of(leader)].push_back(subject);
  } else {
    send_event(observer, leader, kKindEventToLeader, subject, info);
  }
}

void OneHopMembership::keepalive_tick(std::size_t unit) {
  const NodeId leader = unit_leader(unit);
  if (leader == kInvalidNode) return;
  if (pending_unit_events_[unit].empty()) return;
  keepalive_send(leader, unit, /*always_send=*/false);
}

void OneHopMembership::keepalive_send(NodeId leader, std::size_t unit,
                                      bool always_send) {
  auto& pending = pending_unit_events_[unit];
  if (pending.empty() && !always_send) return;
  std::sort(pending.begin(), pending.end());
  pending.erase(std::unique(pending.begin(), pending.end()), pending.end());

  const SimTime now = simulator_.now();
  const auto [begin, end] = unit_range(unit);

  Bytes msg;
  msg.push_back(kKindKeepalive);
  std::vector<std::pair<NodeId, LivenessInfo>> records;
  records.reserve(pending.size() + 1);
  LivenessInfo own;
  own.alive = true;
  own.dt_alive = own_uptime(leader);
  own.dt_since = 0;
  records.emplace_back(leader, own);
  for (NodeId subject : pending) {
    const auto obs = caches_[leader].observation(subject, now);
    if (obs.has_value()) records.emplace_back(subject, *obs);
  }
  put_u16be(msg, static_cast<std::uint16_t>(records.size()));
  for (const auto& [subject, info] : records) {
    encode_record(msg, subject, info);
  }

  for (std::size_t member = begin; member < end; ++member) {
    const NodeId id = static_cast<NodeId>(member);
    if (id == leader) continue;
    if (config_.deterministic_failover) {
      // Belief-routed: a leader cannot consult ground truth for its
      // members any more than for anything else; sends to dead members
      // are dropped by the transport.
      const auto* entry = caches_[leader].find(id);
      if (entry == nullptr || !entry->alive) continue;
    } else if (!churn_.is_up(id)) {
      continue;
    }
    demux_.send(net::Channel::kGossip, leader, id, msg);
    ++messages_sent_;
    bytes_sent_ += msg.size();
  }
  pending.clear();
}

void OneHopMembership::watchdog_tick(NodeId node) {
  if (!churn_.is_up(node)) return;
  const std::size_t unit = unit_of(node);
  const SimTime now = simulator_.now();
  const NodeId bleader = believed_leader(node, unit);
  if (bleader == node) {
    // Self-believed leader does keepalive duty — always, so members can
    // read silence as failure.
    keepalive_send(node, unit, /*always_send=*/true);
    last_leader_heard_[node] = now;
    return;
  }
  if (bleader == kInvalidNode) return;
  const SimDuration silence = now - last_leader_heard_[node];
  const SimDuration threshold =
      static_cast<SimDuration>(config_.leader_miss_threshold) *
      config_.keepalive_interval;
  if (silence <= threshold) return;
  // Leader silent too long: declare it dead locally and re-elect. The
  // lowest-id rule means every member with the same beliefs elects the
  // same successor; only the successor itself announces.
  caches_[node].heard_left_directly(bleader, now);
  last_leader_heard_[node] = now;  // restart the clock for the successor
  const NodeId next = believed_leader(node, unit);
  if (next == node) {
    ++control_stats_.elections;
    announce_leader(node, unit);
  }
}

void OneHopMembership::announce_leader(NodeId node, std::size_t unit) {
  const SimTime now = simulator_.now();
  const auto [begin, end] = unit_range(unit);

  // The announcement carries the announcer's own record plus its view of
  // every lower-id unit member (the predecessors it believes dead), so
  // receivers that still trusted a dead predecessor converge in one hop
  // instead of timing each predecessor out in sequence.
  Bytes msg;
  msg.push_back(kKindLeaderAnnounce);
  std::vector<std::pair<NodeId, LivenessInfo>> records;
  LivenessInfo own;
  own.alive = true;
  own.dt_alive = own_uptime(node);
  own.dt_since = 0;
  records.emplace_back(node, own);
  for (std::size_t id = begin; id < static_cast<std::size_t>(node); ++id) {
    const auto obs = caches_[node].observation(static_cast<NodeId>(id), now);
    if (obs.has_value()) records.emplace_back(static_cast<NodeId>(id), *obs);
  }
  put_u16be(msg, static_cast<std::uint16_t>(records.size()));
  for (const auto& [subject, info] : records) {
    encode_record(msg, subject, info);
  }

  // Unit members we believe alive, plus every other unit's believed leader
  // (so inter-leader event routing finds us).
  for (std::size_t member = begin; member < end; ++member) {
    const NodeId id = static_cast<NodeId>(member);
    if (id == node) continue;
    const auto* entry = caches_[node].find(id);
    if (entry == nullptr || !entry->alive) continue;
    demux_.send(net::Channel::kGossip, node, id, msg);
    ++messages_sent_;
    bytes_sent_ += msg.size();
    ++control_stats_.leader_announcements;
  }
  for (std::size_t other = 0; other < config_.units; ++other) {
    if (other == unit) continue;
    const NodeId peer = believed_leader(node, other);
    if (peer == kInvalidNode) continue;
    demux_.send(net::Channel::kGossip, node, peer, msg);
    ++messages_sent_;
    bytes_sent_ += msg.size();
    ++control_stats_.leader_announcements;
  }
}

void OneHopMembership::handle_message(NodeId from, NodeId to,
                                      ByteView payload) {
  if (!churn_.is_up(to) || payload.size() < 3) return;
  const std::uint8_t kind = payload[0];
  const std::size_t count = get_u16be(payload, 1);
  std::vector<DecodedRecord> records;
  if (!decode_records(payload, 3, count, records)) return;
  const SimTime now = simulator_.now();

  // Failover mode: a keepalive or announcement from a same-unit peer is
  // proof of an acting leader — reset the silence clock.
  if (config_.deterministic_failover &&
      (kind == kKindKeepalive || kind == kKindLeaderAnnounce) &&
      unit_of(from) == unit_of(to)) {
    last_leader_heard_[to] = now;
  }

  NodeCache& cache = caches_[to];
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& rec = records[i];
    if (rec.subject == to) continue;
    if (i == 0 && rec.subject == from && rec.info.dt_since == 0) {
      cache.heard_directly(from, rec.info.dt_alive, now);
    } else {
      cache.merge_indirect(rec.subject, rec.info, now);
    }
    if (kind == kKindEventToLeader || kind == kKindEventInterLeader) {
      // Leaders queue accepted events for their unit keepalive; an event
      // arriving from another unit's observer also fans out inter-leader
      // when we are the first leader to see it.
      pending_unit_events_[unit_of(to)].push_back(rec.subject);
      if (kind == kKindEventToLeader) {
        const auto obs = cache.observation(rec.subject, now);
        if (obs.has_value()) {
          for (std::size_t unit = 0; unit < config_.units; ++unit) {
            const NodeId other = config_.deterministic_failover
                                     ? believed_leader(to, unit)
                                     : unit_leader(unit);
            if (other == kInvalidNode || other == to) continue;
            send_event(to, other, kKindEventInterLeader, rec.subject, *obs);
          }
        }
        // A join announcement (the subject reporting itself): hand the
        // joiner a fresh membership snapshot, as OneHop's join protocol
        // downloads the membership table from a neighbor.
        if (rec.subject == from && rec.info.alive) {
          send_snapshot(to, from);
        }
      }
    }
  }
}

double OneHopMembership::belief_accuracy() const {
  const std::size_t n = caches_.size();
  std::uint64_t correct = 0;
  std::uint64_t total = 0;
  for (NodeId owner = 0; owner < n; ++owner) {
    if (!churn_.is_up(owner)) continue;
    for (NodeId subject = 0; subject < n; ++subject) {
      if (subject == owner) continue;
      const auto* entry = caches_[owner].find(subject);
      const bool believed_alive = entry != nullptr && entry->alive;
      ++total;
      if (believed_alive == churn_.is_up(subject)) ++correct;
    }
  }
  return total ? static_cast<double>(correct) / static_cast<double>(total)
               : 0.0;
}

void OneHopMembership::byte_census(obs::capacity::ByteCensus& census) const {
  std::uint64_t cache_bytes = obs::capacity::vector_bytes(caches_);
  for (const NodeCache& cache : caches_) cache_bytes += cache.memory_bytes();
  census.add("membership", "node_caches", cache_bytes);

  std::uint64_t pending_bytes =
      obs::capacity::vector_bytes(pending_unit_events_);
  for (const auto& events : pending_unit_events_) {
    pending_bytes += obs::capacity::vector_bytes(events);
  }
  census.add("membership", "pending_unit_events", pending_bytes);

  census.add("membership", "node_rngs",
             obs::capacity::vector_bytes(node_rngs_) +
                 obs::capacity::vector_bytes(last_leader_heard_));
  census.add("membership", "keepalive_tasks",
             obs::capacity::vector_bytes(keepalive_tasks_) +
                 obs::capacity::vector_bytes(watchdog_tasks_) +
                 (keepalive_tasks_.size() + watchdog_tasks_.size()) *
                     sizeof(sim::PeriodicTask));
}

}  // namespace p2panon::membership
