// Common interface over the membership dissemination substrates.
//
// The paper's protocols (biased/random mix choice, Eq. 3 predictor) only
// need a per-node NodeCache and the node's own uptime; they are agnostic to
// *how* liveness records travel. GossipMembership (epidemic) and
// OneHopMembership (hierarchical, leader-based) both implement this
// interface so the harness can swap substrates per scenario — the
// membership-chaos leader-crash scenario runs the durability experiment
// over OneHop, everything else over gossip.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "common/types.hpp"
#include "membership/node_cache.hpp"

namespace p2panon::obs::capacity {
class ByteCensus;
}  // namespace p2panon::obs::capacity

namespace p2panon::membership {

/// Control-plane activity tallies, uniform across substrates (fields a
/// substrate doesn't implement stay 0). Exported by the harness as
/// membership_control_* series and aggregated in the membership-sweep
/// repair-convergence tables.
struct ControlStats {
  std::uint64_t anti_entropy_rounds = 0;    // digest exchanges initiated
  std::uint64_t digests_sent = 0;           // digest + digest-reply messages
  std::uint64_t repair_records_sent = 0;    // records pushed to heal a diff
  std::uint64_t repair_records_accepted = 0;  // pushed records that merged
  std::uint64_t elections = 0;              // leader failovers performed
  std::uint64_t leader_announcements = 0;   // announce messages sent
};

class MembershipProvider {
 public:
  virtual ~MembershipProvider() = default;

  /// Seeds caches and starts periodic dissemination tasks.
  virtual void start() = 0;

  virtual NodeCache& cache(NodeId node) = 0;
  virtual const NodeCache& cache(NodeId node) const = 0;

  /// The node's own uptime (what it reports in its packets).
  virtual SimDuration own_uptime(NodeId node) const = 0;

  virtual std::size_t num_nodes() const = 0;

  /// Fraction of (live observer, subject) pairs whose alive/dead belief
  /// matches ground truth — dissemination quality metric.
  virtual double belief_accuracy() const = 0;

  virtual std::uint64_t messages_sent() const = 0;
  virtual std::uint64_t bytes_sent() const = 0;

  virtual ControlStats control_stats() const = 0;

  /// Reports this substrate's container footprints into the capacity byte
  /// census under the "membership" subsystem (caches, rumor queues,
  /// dissemination tasks). Read-only; never perturbs the run.
  virtual void byte_census(obs::capacity::ByteCensus& census) const = 0;
};

}  // namespace p2panon::membership
