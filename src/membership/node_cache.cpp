#include "membership/node_cache.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace p2panon::membership {

NodeCache::NodeCache(std::size_t num_nodes) : entries_(num_nodes) {
  for (std::size_t i = 0; i < num_nodes; ++i) {
    entries_[i].node = static_cast<NodeId>(i);
  }
}

void NodeCache::heard_directly(NodeId node, SimDuration dt_alive,
                               SimTime now) {
  Entry& e = entries_.at(node);
  if (!e.known) ++known_count_;
  // Bounded trust: direct contact proves the node is alive *now*, but its
  // claimed uptime is still just a claim. No node can have been up longer
  // than the simulation has run, so cap at now + slack and file suspicion
  // for the excess — the node stays usable but loses its stolen bias.
  if (trust_enabled_ && dt_alive > now + trust_config_.claim_slack) {
    dt_alive = now + trust_config_.claim_slack;
    ++merge_stats_.inflated_rejected;
    report_suspicion(node, trust_config_.inflation_suspicion, now);
  }
  ++merge_stats_.updates_direct;
  e.known = true;
  e.alive = true;
  e.direct = true;
  e.dt_alive = dt_alive;
  e.dt_since = 0;
  e.t_last = now;
}

void NodeCache::heard_left_directly(NodeId node, SimTime now) {
  Entry& e = entries_.at(node);
  if (!e.known) ++known_count_;
  ++merge_stats_.updates_direct;
  e.known = true;
  e.alive = false;
  e.direct = true;
  e.dt_alive = 0;
  e.dt_since = 0;
  e.t_last = now;
}

bool NodeCache::merge_indirect(NodeId node, const LivenessInfo& info,
                               SimTime now) {
  Entry& e = entries_.at(node);
  // Bounded trust: an indirect claim is rejected outright when it is
  // physically impossible (more uptime than the clock allows) or when it
  // contradicts our own direct observation of the subject (direct outranks
  // indirect — a relayed rumor cannot make a node look longer-lived than
  // we saw it ourselves).
  if (trust_enabled_ && info.alive) {
    const SimDuration slack = trust_config_.claim_slack;
    const bool impossible =
        info.dt_alive > now + slack;
    const bool over_direct =
        e.known && e.direct && e.alive &&
        info.dt_alive > e.dt_alive + (now - e.t_last) + slack;
    if (impossible || over_direct) {
      ++merge_stats_.inflated_rejected;
      report_suspicion(node, trust_config_.inflation_suspicion, now);
      return false;
    }
  }
  if (!e.known) {
    ++known_count_;
    ++merge_stats_.updates_indirect;
    e.known = true;
    e.alive = info.alive;
    e.direct = false;
    e.dt_alive = info.dt_alive;
    e.dt_since = info.dt_since;
    e.t_last = now;
    return true;
  }
  // Effective staleness of what we already have.
  const SimDuration current_since = e.dt_since + (now - e.t_last);
  if (info.dt_since < current_since) {
    ++merge_stats_.updates_indirect;
    e.alive = info.alive;
    e.direct = false;
    e.dt_alive = info.dt_alive;
    e.dt_since = info.dt_since;
    e.t_last = now;
    return true;
  }
  ++merge_stats_.merges_rejected;
  return false;
}

double NodeCache::predictor(NodeId node, SimTime now) const {
  const Entry& e = entries_.at(node);
  if (!e.known || !e.alive) return 0.0;
  return liveness_predictor(e.dt_alive, e.dt_since, e.t_last, now);
}

std::optional<LivenessInfo> NodeCache::observation(NodeId node,
                                                   SimTime now) const {
  const Entry& e = entries_.at(node);
  if (!e.known) return std::nullopt;
  LivenessInfo info;
  info.alive = e.alive;
  info.dt_alive = e.dt_alive;
  info.dt_since = e.dt_since + (now - e.t_last);
  return info;
}

const NodeCache::Entry* NodeCache::find(NodeId node) const {
  if (node >= entries_.size()) return nullptr;
  const Entry& e = entries_[node];
  return e.known ? &e : nullptr;
}

std::vector<NodeId> NodeCache::known_nodes() const {
  std::vector<NodeId> out;
  out.reserve(known_count_);
  for (const Entry& e : entries_) {
    if (e.known) out.push_back(e.node);
  }
  return out;
}

std::vector<NodeId> NodeCache::sample_known(
    std::size_t count, Rng& rng,
    const std::unordered_set<NodeId>& exclude) const {
  // Legacy entry point (no clock): quarantine cannot decay without `now`,
  // so this overload never consults suspicion. Selection paths that honor
  // quarantine use the four-argument overload below.
  return sample_known(count, rng, exclude, 0, /*honor_quarantine=*/false);
}

std::vector<NodeId> NodeCache::sample_known(
    std::size_t count, Rng& rng, const std::unordered_set<NodeId>& exclude,
    SimTime now, bool honor_quarantine) const {
  const bool gate = honor_quarantine && suspicion_enabled_;
  std::vector<NodeId> pool;
  pool.reserve(known_count_);
  for (const Entry& e : entries_) {
    if (!e.known || exclude.count(e.node) > 0) continue;
    if (gate && quarantined(e.node, now)) continue;
    pool.push_back(e.node);
  }
  if (pool.size() < count) return {};
  const auto picks = rng.sample_without_replacement(pool.size(), count);
  std::vector<NodeId> out;
  out.reserve(count);
  for (auto i : picks) out.push_back(pool[i]);
  return out;
}

std::vector<NodeId> NodeCache::top_by_predictor(
    std::size_t count, SimTime now,
    const std::unordered_set<NodeId>& exclude) const {
  std::vector<std::pair<double, NodeId>> scored;
  scored.reserve(known_count_);
  for (const Entry& e : entries_) {
    if (!e.known || exclude.count(e.node) > 0) continue;
    if (suspicion_enabled_) {
      // Behavioral bias (§4.9 generalized): quarantined nodes are refused
      // outright; any remaining suspicion demotes the liveness score by
      // q / (1 + penalty * s), so equally-live clean nodes win.
      if (quarantined(e.node, now)) continue;
      const double s = suspicion(e.node, now);
      scored.emplace_back(
          predictor(e.node, now) /
              (1.0 + suspicion_config_.bias_penalty * s),
          e.node);
      continue;
    }
    scored.emplace_back(predictor(e.node, now), e.node);
  }
  if (scored.size() < count) return {};
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<long>(count), scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;  // deterministic ties
                    });
  std::vector<NodeId> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(scored[i].second);
  return out;
}

void NodeCache::clear() {
  for (Entry& e : entries_) {
    const NodeId id = e.node;
    e = Entry{};
    e.node = id;
  }
  known_count_ = 0;
  merge_stats_ = MergeStats{};
  for (Suspicion& s : suspicion_) s = Suspicion{};
}

// --- bounded trust ---------------------------------------------------------

void NodeCache::enable_bounded_trust(const TrustConfig& config) {
  trust_enabled_ = true;
  trust_config_ = config;
}

NodeCache::AgeStats NodeCache::age_stats(SimTime now,
                                         SimDuration stale_after) const {
  AgeStats stats;
  std::vector<SimDuration> ages;
  ages.reserve(known_count_);
  std::size_t stale = 0;
  for (const Entry& e : entries_) {
    if (!e.known || !e.alive) continue;
    const SimDuration age = e.dt_since + (now - e.t_last);
    ages.push_back(age);
    if (age > stale_after) ++stale;
  }
  stats.alive_known = ages.size();
  if (ages.empty()) return stats;
  const std::size_t p50 = ages.size() / 2;
  const std::size_t p95 =
      std::min(ages.size() - 1, (ages.size() * 95) / 100);
  std::nth_element(ages.begin(), ages.begin() + static_cast<long>(p50),
                   ages.end());
  stats.age_p50 = ages[p50];
  std::nth_element(ages.begin(), ages.begin() + static_cast<long>(p95),
                   ages.end());
  stats.age_p95 = ages[p95];
  stats.stale_fraction =
      static_cast<double>(stale) / static_cast<double>(ages.size());
  return stats;
}

// --- behavioral suspicion --------------------------------------------------------

void NodeCache::enable_suspicion(const SuspicionConfig& config) {
  suspicion_enabled_ = true;
  suspicion_config_ = config;
  suspicion_.assign(entries_.size(), Suspicion{});
}

double NodeCache::decayed_suspicion(NodeId node, SimTime now) const {
  const Suspicion& s = suspicion_[node];
  if (s.score == 0.0) return 0.0;
  if (now <= s.updated) return s.score;
  const double dt = static_cast<double>(now - s.updated);
  const double half_life =
      static_cast<double>(std::max<SimDuration>(suspicion_config_.half_life, 1));
  return s.score * std::exp2(-dt / half_life);
}

void NodeCache::report_suspicion(NodeId node, double amount,
                                 SimTime now) const {
  if (!suspicion_enabled_ || node >= suspicion_.size() || amount <= 0.0) {
    return;
  }
  Suspicion& s = suspicion_[node];
  s.score = decayed_suspicion(node, now) + amount;
  s.updated = now;
}

double NodeCache::suspicion(NodeId node, SimTime now) const {
  if (!suspicion_enabled_ || node >= suspicion_.size()) return 0.0;
  return decayed_suspicion(node, now);
}

bool NodeCache::quarantined(NodeId node, SimTime now) const {
  if (!suspicion_enabled_ || node >= suspicion_.size()) return false;
  return decayed_suspicion(node, now) >= suspicion_config_.quarantine_threshold;
}

std::size_t NodeCache::quarantined_count(SimTime now) const {
  if (!suspicion_enabled_) return 0;
  std::size_t count = 0;
  for (NodeId node = 0; node < suspicion_.size(); ++node) {
    if (quarantined(node, now)) ++count;
  }
  return count;
}

}  // namespace p2panon::membership
