// Epidemic membership dissemination with liveness piggybacking (paper §4.8,
// §4.9 "Learning Node Liveness Information").
//
// Every live node runs a periodic gossip task. A gossip message carries:
//   - the sender's own record (dt_alive since its last join, dt_since = 0),
//   - "hot" rumors: membership changes the sender recently learned, each
//     forwarded a bounded number of times (rumor mongering),
//   - a few random cache records for anti-entropy.
// Receivers apply the paper's merge rules (NodeCache) and re-enqueue
// accepted changes as rumors, giving O(log N) dissemination.
//
// Join/leave handling mirrors OneHop's behavior at the level the paper
// relies on: a joining node announces itself to a few live contacts and
// pulls a full cache snapshot from one of them; a leave is noticed by a few
// "overlay neighbor" nodes after a short detection delay (standing in for
// OneHop's keepalive-based failure detection — see DESIGN.md substitutions)
// and then spreads epidemically like any other rumor.
#pragma once

#include <deque>
#include <memory>
#include <unordered_set>
#include <vector>

#include "churn/churn_model.hpp"
#include "common/rng.hpp"
#include "membership/node_cache.hpp"
#include "membership/provider.hpp"
#include "net/demux.hpp"
#include "sim/simulator.hpp"

namespace p2panon::membership {

struct GossipConfig {
  SimDuration interval = 2 * kSecond;   // per-node gossip period
  std::size_t fanout = 1;               // targets per round
  std::size_t max_rumors = 32;          // hot records per message
  // Anti-entropy records per message, swept round-robin over the id space
  // so every record's staleness is bounded by (N / refresh_records) *
  // interval and roughly UNIFORM across subjects. Uniform staleness is
  // what makes the Eq. 3 predictor rank by age (q = a / (a + s) compares
  // s/a; with random per-subject staleness the freshest-heard node wins
  // regardless of age and biased mix choice degenerates) — it models
  // OneHop's periodic full-membership keepalive refresh.
  std::size_t refresh_records = 64;
  int rumor_forwards = 4;               // times a node forwards a rumor
  SimDuration detection_delay_min = 500 * kMillisecond;
  SimDuration detection_delay_max = 2 * kSecond;
  std::size_t churn_observers = 3;      // nodes that notice a join/leave
  bool seed_full_membership = true;     // OneHop-style complete initial view

  // --- Control-plane resilience (DESIGN §9). Every knob below defaults
  // OFF; with all of them off, RNG draw sequences and wire traffic are
  // byte-identical to the seed. ---

  /// Digest-based anti-entropy repair period; 0 disables. Each round a
  /// node sends one partner a compact per-bucket digest of its alive/dead
  /// beliefs; the partner pushes back records for every differing bucket
  /// and returns its own digest so repair flows both ways (one round trip,
  /// loop-free). This is what re-converges caches after a gossip blackout
  /// or partition heals — rumor mongering alone has already forgotten the
  /// deltas by then.
  SimDuration anti_entropy_interval = 0;
  /// Digest resolution: beliefs are XOR-folded into `subject % buckets`
  /// slots. More buckets = finer diffs = fewer records pushed per repair.
  std::size_t anti_entropy_buckets = 16;

  /// Route gossip peer selection and churn-observer picks through
  /// deterministic per-node RNG streams instead of the instance-shared
  /// stream, so one node's draw history is independent of every other
  /// node's tick interleaving.
  bool per_node_rng = false;

  /// Bounded-trust liveness merging: enables NodeCache bounded trust (and
  /// the suspicion machinery it files inflation evidence through) on every
  /// cache.
  bool bounded_trust = false;
  TrustConfig trust;
  SuspicionConfig trust_suspicion;
};

class GossipMembership final : public MembershipProvider {
 public:
  GossipMembership(sim::Simulator& simulator, net::Demux& demux,
                   churn::ChurnModel& churn_model, GossipConfig config,
                   Rng rng);
  GossipMembership(const GossipMembership&) = delete;
  GossipMembership& operator=(const GossipMembership&) = delete;

  /// Seeds caches, subscribes to churn and starts the per-node gossip
  /// tasks (with random phase so rounds don't align).
  void start() override;

  NodeCache& cache(NodeId node) override { return caches_[node]; }
  const NodeCache& cache(NodeId node) const override { return caches_[node]; }

  /// The node's own uptime (what it would report in its packets).
  SimDuration own_uptime(NodeId node) const override;

  std::size_t num_nodes() const override { return caches_.size(); }

  /// Fraction of (live observer, subject) pairs whose alive/dead belief
  /// matches ground truth — dissemination quality metric used in tests.
  double belief_accuracy() const override;

  std::uint64_t messages_sent() const override { return messages_sent_; }
  std::uint64_t bytes_sent() const override { return bytes_sent_; }
  ControlStats control_stats() const override { return control_stats_; }

  void byte_census(obs::capacity::ByteCensus& census) const override;

  // Legacy accessor names, kept for direct users (tests).
  std::uint64_t gossip_messages_sent() const { return messages_sent_; }
  std::uint64_t gossip_bytes_sent() const { return bytes_sent_; }

 private:
  struct Rumor {
    NodeId subject;
    int remaining;
  };

  void on_churn(NodeId node, bool up, SimTime when);
  void gossip_tick(NodeId node);
  void anti_entropy_tick(NodeId node);
  void handle_message(NodeId from, NodeId to, ByteView payload);
  void handle_digest(NodeId from, NodeId to, ByteView payload,
                     bool reply_with_digest);
  void enqueue_rumor(NodeId owner, NodeId subject);
  void send_records(NodeId from, NodeId to, std::uint8_t kind,
                    const std::vector<NodeId>& subjects);
  void send_digest(NodeId from, NodeId to, std::uint8_t kind);
  std::vector<std::uint64_t> compute_digest(NodeId node) const;
  std::vector<NodeId> pick_gossip_targets(NodeId node, std::size_t count,
                                          Rng& rng);
  /// The stream a node's own decisions draw from: its private stream in
  /// per-node mode, the instance-shared stream otherwise.
  Rng& decision_rng(NodeId node) {
    return config_.per_node_rng ? node_rngs_[node] : rng_;
  }

  sim::Simulator& simulator_;
  net::Demux& demux_;
  churn::ChurnModel& churn_;
  GossipConfig config_;
  Rng rng_;

  std::vector<NodeCache> caches_;
  std::vector<std::deque<Rumor>> rumor_queues_;
  std::vector<std::unordered_set<NodeId>> rumor_members_;  // dedupe
  std::vector<NodeId> refresh_cursors_;  // round-robin anti-entropy sweep
  std::vector<std::unique_ptr<sim::PeriodicTask>> tasks_;
  std::vector<std::unique_ptr<sim::PeriodicTask>> anti_entropy_tasks_;
  // Per-node streams, materialized in start() only when a mode needing
  // them is on (per_node_rng or anti-entropy) so the default draws nothing
  // extra from rng_.
  std::vector<Rng> node_rngs_;

  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  ControlStats control_stats_;
  bool started_ = false;
};

// --- Wire helpers shared with the OneHop variant ------------------------------

/// Serialized liveness record: subject(4) flags(1) dt_alive(8) dt_since(8).
constexpr std::size_t kRecordWireSize = 21;

void encode_record(Bytes& out, NodeId subject, const LivenessInfo& info);

struct DecodedRecord {
  NodeId subject;
  LivenessInfo info;
};

/// Decodes `count` records from `in` starting at `offset`; returns false on
/// truncation.
bool decode_records(ByteView in, std::size_t offset, std::size_t count,
                    std::vector<DecodedRecord>& out);

}  // namespace p2panon::membership
