// Epidemic membership dissemination with liveness piggybacking (paper §4.8,
// §4.9 "Learning Node Liveness Information").
//
// Every live node runs a periodic gossip task. A gossip message carries:
//   - the sender's own record (dt_alive since its last join, dt_since = 0),
//   - "hot" rumors: membership changes the sender recently learned, each
//     forwarded a bounded number of times (rumor mongering),
//   - a few random cache records for anti-entropy.
// Receivers apply the paper's merge rules (NodeCache) and re-enqueue
// accepted changes as rumors, giving O(log N) dissemination.
//
// Join/leave handling mirrors OneHop's behavior at the level the paper
// relies on: a joining node announces itself to a few live contacts and
// pulls a full cache snapshot from one of them; a leave is noticed by a few
// "overlay neighbor" nodes after a short detection delay (standing in for
// OneHop's keepalive-based failure detection — see DESIGN.md substitutions)
// and then spreads epidemically like any other rumor.
#pragma once

#include <deque>
#include <memory>
#include <unordered_set>
#include <vector>

#include "churn/churn_model.hpp"
#include "common/rng.hpp"
#include "membership/node_cache.hpp"
#include "net/demux.hpp"
#include "sim/simulator.hpp"

namespace p2panon::membership {

struct GossipConfig {
  SimDuration interval = 2 * kSecond;   // per-node gossip period
  std::size_t fanout = 1;               // targets per round
  std::size_t max_rumors = 32;          // hot records per message
  // Anti-entropy records per message, swept round-robin over the id space
  // so every record's staleness is bounded by (N / refresh_records) *
  // interval and roughly UNIFORM across subjects. Uniform staleness is
  // what makes the Eq. 3 predictor rank by age (q = a / (a + s) compares
  // s/a; with random per-subject staleness the freshest-heard node wins
  // regardless of age and biased mix choice degenerates) — it models
  // OneHop's periodic full-membership keepalive refresh.
  std::size_t refresh_records = 64;
  int rumor_forwards = 4;               // times a node forwards a rumor
  SimDuration detection_delay_min = 500 * kMillisecond;
  SimDuration detection_delay_max = 2 * kSecond;
  std::size_t churn_observers = 3;      // nodes that notice a join/leave
  bool seed_full_membership = true;     // OneHop-style complete initial view
};

class GossipMembership {
 public:
  GossipMembership(sim::Simulator& simulator, net::Demux& demux,
                   churn::ChurnModel& churn_model, GossipConfig config,
                   Rng rng);
  GossipMembership(const GossipMembership&) = delete;
  GossipMembership& operator=(const GossipMembership&) = delete;

  /// Seeds caches, subscribes to churn and starts the per-node gossip
  /// tasks (with random phase so rounds don't align).
  void start();

  NodeCache& cache(NodeId node) { return caches_[node]; }
  const NodeCache& cache(NodeId node) const { return caches_[node]; }

  /// The node's own uptime (what it would report in its packets).
  SimDuration own_uptime(NodeId node) const;

  std::size_t num_nodes() const { return caches_.size(); }

  /// Fraction of (live observer, subject) pairs whose alive/dead belief
  /// matches ground truth — dissemination quality metric used in tests.
  double belief_accuracy() const;

  std::uint64_t gossip_messages_sent() const { return messages_sent_; }
  std::uint64_t gossip_bytes_sent() const { return bytes_sent_; }

 private:
  struct Rumor {
    NodeId subject;
    int remaining;
  };

  void on_churn(NodeId node, bool up, SimTime when);
  void gossip_tick(NodeId node);
  void handle_message(NodeId from, NodeId to, ByteView payload);
  void enqueue_rumor(NodeId owner, NodeId subject);
  void send_records(NodeId from, NodeId to, std::uint8_t kind,
                    const std::vector<NodeId>& subjects);
  std::vector<NodeId> pick_gossip_targets(NodeId node, std::size_t count);

  sim::Simulator& simulator_;
  net::Demux& demux_;
  churn::ChurnModel& churn_;
  GossipConfig config_;
  Rng rng_;

  std::vector<NodeCache> caches_;
  std::vector<std::deque<Rumor>> rumor_queues_;
  std::vector<std::unordered_set<NodeId>> rumor_members_;  // dedupe
  std::vector<NodeId> refresh_cursors_;  // round-robin anti-entropy sweep
  std::vector<std::unique_ptr<sim::PeriodicTask>> tasks_;

  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  bool started_ = false;
};

// --- Wire helpers shared with the OneHop variant ------------------------------

/// Serialized liveness record: subject(4) flags(1) dt_alive(8) dt_since(8).
constexpr std::size_t kRecordWireSize = 21;

void encode_record(Bytes& out, NodeId subject, const LivenessInfo& info);

struct DecodedRecord {
  NodeId subject;
  LivenessInfo info;
};

/// Decodes `count` records from `in` starting at `offset`; returns false on
/// truncation.
bool decode_records(ByteView in, std::size_t offset, std::size_t count,
                    std::vector<DecodedRecord>& out);

}  // namespace p2panon::membership
