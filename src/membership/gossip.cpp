#include "membership/gossip.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "obs/capacity/census.hpp"

namespace p2panon::membership {

namespace {
// Message kinds within the gossip channel.
constexpr std::uint8_t kKindGossip = 1;
constexpr std::uint8_t kKindSyncRequest = 2;
constexpr std::uint8_t kKindSyncResponse = 3;
// Anti-entropy repair (control-plane resilience, DESIGN §9). Digest and
// digest-reply bodies are bucket hashes, not liveness records — their
// shape deliberately never matches [count u16][count * 21-byte records],
// so the fault layer's record-mutation rules pass them through untouched.
constexpr std::uint8_t kKindDigest = 4;       // opens a repair round trip
constexpr std::uint8_t kKindRepair = 5;       // records healing a diff
constexpr std::uint8_t kKindDigestReply = 6;  // closes the round (no reply)

// Stateless mixer for digest hashing (SplitMix64 finalizer).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

void encode_record(Bytes& out, NodeId subject, const LivenessInfo& info) {
  put_u32be(out, subject);
  out.push_back(info.alive ? 1 : 0);
  put_u64be(out, static_cast<std::uint64_t>(info.dt_alive));
  put_u64be(out, static_cast<std::uint64_t>(info.dt_since));
}

bool decode_records(ByteView in, std::size_t offset, std::size_t count,
                    std::vector<DecodedRecord>& out) {
  if (offset + count * kRecordWireSize > in.size()) return false;
  out.reserve(out.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    DecodedRecord rec;
    rec.subject = get_u32be(in, offset);
    rec.info.alive = in[offset + 4] != 0;
    rec.info.dt_alive = static_cast<SimDuration>(get_u64be(in, offset + 5));
    rec.info.dt_since = static_cast<SimDuration>(get_u64be(in, offset + 13));
    out.push_back(rec);
    offset += kRecordWireSize;
  }
  return true;
}

GossipMembership::GossipMembership(sim::Simulator& simulator,
                                   net::Demux& demux,
                                   churn::ChurnModel& churn_model,
                                   GossipConfig config, Rng rng)
    : simulator_(simulator),
      demux_(demux),
      churn_(churn_model),
      config_(config),
      rng_(rng) {
  const std::size_t n = churn_.num_nodes();
  caches_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) caches_.emplace_back(n);
  rumor_queues_.resize(n);
  rumor_members_.resize(n);
  // Stagger the sweep phases so the network's refresh load is smooth and
  // different owners don't all have the same subjects stale at once.
  refresh_cursors_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    refresh_cursors_[i] = static_cast<NodeId>(rng_.next_below(n));
  }
  if (config_.bounded_trust) {
    for (NodeCache& cache : caches_) {
      cache.enable_bounded_trust(config_.trust);
      cache.enable_suspicion(config_.trust_suspicion);
    }
  }
}

void GossipMembership::start() {
  started_ = true;
  const std::size_t n = caches_.size();

  if (config_.seed_full_membership) {
    // OneHop gives nodes "accurate and complete membership information";
    // we bootstrap that state at t = 0 from ground truth and let gossip
    // maintain it from then on.
    const SimTime now = simulator_.now();
    for (NodeId owner = 0; owner < n; ++owner) {
      for (NodeId subject = 0; subject < n; ++subject) {
        if (subject == owner) continue;
        if (churn_.is_up(subject)) {
          caches_[owner].heard_directly(subject, 0, now);
        } else {
          caches_[owner].heard_left_directly(subject, now);
        }
      }
    }
  }

  demux_.set_handler(net::Channel::kGossip,
                     [this](NodeId from, NodeId to, ByteView payload) {
                       handle_message(from, to, payload);
                     });

  churn_.subscribe([this](NodeId node, bool up, SimTime when) {
    on_churn(node, up, when);
  });

  // Per-node streams: one extra draw from rng_ seeds all of them, taken
  // only when a mode that uses them is on — the default start() sequence
  // is unchanged.
  if (config_.per_node_rng || config_.anti_entropy_interval > 0) {
    const std::uint64_t base = rng_.next_u64();
    node_rngs_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      node_rngs_.emplace_back(base ^
                              mix64(static_cast<std::uint64_t>(i) + 1));
    }
  }

  static const auto kRoundEvent = obs::capacity::event_type("gossip.round");
  tasks_.reserve(n);
  for (NodeId node = 0; node < n; ++node) {
    auto task = std::make_unique<sim::PeriodicTask>(
        simulator_, config_.interval, [this, node] { gossip_tick(node); },
        kRoundEvent);
    // Random phase so the fleet doesn't gossip in lockstep.
    task->start_at(simulator_.now() +
                   static_cast<SimDuration>(rng_.next_below(
                       static_cast<std::uint64_t>(config_.interval))));
    tasks_.push_back(std::move(task));
  }

  if (config_.anti_entropy_interval > 0) {
    static const auto kAntiEntropyEvent =
        obs::capacity::event_type("gossip.anti_entropy");
    anti_entropy_tasks_.reserve(n);
    for (NodeId node = 0; node < n; ++node) {
      auto task = std::make_unique<sim::PeriodicTask>(
          simulator_, config_.anti_entropy_interval,
          [this, node] { anti_entropy_tick(node); }, kAntiEntropyEvent);
      task->start_at(simulator_.now() +
                     static_cast<SimDuration>(node_rngs_[node].next_below(
                         static_cast<std::uint64_t>(
                             config_.anti_entropy_interval))));
      anti_entropy_tasks_.push_back(std::move(task));
    }
  }
}

SimDuration GossipMembership::own_uptime(NodeId node) const {
  return from_seconds(churn_.alive_seconds(node, simulator_.now()));
}

void GossipMembership::on_churn(NodeId node, bool up, SimTime when) {
  // A node that changes state invalidates its own pending rumors.
  (void)when;
  if (up) {
    // The joiner announces itself to a few contacts from its (stale) cache
    // and pulls a snapshot from one of them. Contacts that are dead simply
    // drop the message.
    auto contacts = caches_[node].sample_known(
        std::min<std::size_t>(config_.churn_observers,
                              caches_[node].known_count()),
        decision_rng(node), {node});
    bool sync_requested = false;
    for (NodeId contact : contacts) {
      send_records(node, contact, kKindGossip, {});
      if (!sync_requested) {
        Bytes req;
        req.push_back(kKindSyncRequest);
        demux_.send(net::Channel::kGossip, node, contact, req);
        ++messages_sent_;
        bytes_sent_ += req.size();
        sync_requested = true;
      }
    }
  } else {
    // OneHop-style failure detection: after a short delay the subject's
    // overlay neighbors notice the silence. We pick a few live nodes as
    // those neighbors (simulator shortcut documented in DESIGN.md) and let
    // the news spread epidemically from them.
    const SimDuration delay =
        config_.detection_delay_min +
        static_cast<SimDuration>(
            decision_rng(node).next_below(static_cast<std::uint64_t>(
                config_.detection_delay_max - config_.detection_delay_min +
                1)));
    static const auto kDetectEvent =
        obs::capacity::event_type("gossip.detect");
    simulator_.schedule_after(
        delay,
        [this, node] {
          if (churn_.is_up(node)) return;  // re-joined before detection
          std::size_t found = 0;
          const std::size_t n = caches_.size();
          for (std::size_t attempt = 0;
               attempt < 8 * config_.churn_observers &&
               found < config_.churn_observers;
               ++attempt) {
            const NodeId observer =
                static_cast<NodeId>(decision_rng(node).next_below(n));
            if (observer == node || !churn_.is_up(observer)) continue;
            caches_[observer].heard_left_directly(node, simulator_.now());
            enqueue_rumor(observer, node);
            ++found;
          }
        },
        kDetectEvent);
  }
}

void GossipMembership::enqueue_rumor(NodeId owner, NodeId subject) {
  auto& members = rumor_members_[owner];
  if (members.count(subject) > 0) return;
  members.insert(subject);
  rumor_queues_[owner].push_back(Rumor{subject, config_.rumor_forwards});
}

std::vector<NodeId> GossipMembership::pick_gossip_targets(NodeId node,
                                                          std::size_t count,
                                                          Rng& rng) {
  // Believed-alive cache entries, found by rejection sampling: with the
  // near-complete caches OneHop-style membership maintains, a random node
  // id is a valid target about half the time, so this avoids building a
  // candidate pool of N entries every gossip round (the hot path of the
  // whole simulation).
  const NodeCache& cache = caches_[node];
  const std::size_t n = caches_.size();
  std::vector<NodeId> out;
  out.reserve(count);
  for (std::size_t attempt = 0; attempt < 16 * count + 64 && out.size() < count;
       ++attempt) {
    const NodeId candidate = static_cast<NodeId>(rng.next_below(n));
    if (candidate == node) continue;
    const auto* entry = cache.find(candidate);
    if (entry == nullptr || !entry->alive) continue;
    bool duplicate = false;
    for (NodeId existing : out) {
      if (existing == candidate) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out.push_back(candidate);
  }
  return out;
}

void GossipMembership::send_records(NodeId from, NodeId to,
                                    std::uint8_t kind,
                                    const std::vector<NodeId>& subjects) {
  const SimTime now = simulator_.now();
  Bytes msg;
  msg.reserve(3 + (subjects.size() + 1) * kRecordWireSize);
  msg.push_back(kind);

  // Sender's own record always rides along ("includes dt_alive in every
  // packet it sends").
  std::vector<std::pair<NodeId, LivenessInfo>> records;
  records.reserve(subjects.size() + 1);
  LivenessInfo own;
  own.alive = true;
  own.dt_alive = own_uptime(from);
  own.dt_since = 0;
  records.emplace_back(from, own);
  for (NodeId subject : subjects) {
    if (subject == from) continue;
    const auto obs = caches_[from].observation(subject, now);
    if (obs.has_value()) records.emplace_back(subject, *obs);
  }

  put_u16be(msg, static_cast<std::uint16_t>(records.size()));
  for (const auto& [subject, info] : records) {
    encode_record(msg, subject, info);
  }
  demux_.send(net::Channel::kGossip, from, to, msg);
  ++messages_sent_;
  bytes_sent_ += msg.size();
}

void GossipMembership::gossip_tick(NodeId node) {
  if (!churn_.is_up(node)) return;

  // Drain up to max_rumors from the hot queue.
  std::vector<NodeId> subjects;
  auto& queue = rumor_queues_[node];
  auto& members = rumor_members_[node];
  std::size_t scanned = 0;
  const std::size_t limit = queue.size();
  while (!queue.empty() && subjects.size() < config_.max_rumors &&
         scanned < limit) {
    Rumor rumor = queue.front();
    queue.pop_front();
    ++scanned;
    subjects.push_back(rumor.subject);
    if (--rumor.remaining > 0) {
      queue.push_back(rumor);
    } else {
      members.erase(rumor.subject);
    }
  }

  // Anti-entropy: sweep the id space round-robin so every subject's record
  // is refreshed on a bounded cycle (uniform staleness; see GossipConfig).
  const std::size_t n = caches_.size();
  const NodeCache& cache = caches_[node];
  std::size_t added = 0;
  std::size_t scanned_ids = 0;
  NodeId cursor = refresh_cursors_[node];
  while (added < config_.refresh_records && scanned_ids < n) {
    const NodeId candidate = cursor;
    cursor = static_cast<NodeId>((cursor + 1) % n);
    ++scanned_ids;
    if (candidate == node || cache.find(candidate) == nullptr) continue;
    subjects.push_back(candidate);
    ++added;
  }
  refresh_cursors_[node] = cursor;

  for (NodeId target :
       pick_gossip_targets(node, config_.fanout, decision_rng(node))) {
    send_records(node, target, kKindGossip, subjects);
  }
}

// --- anti-entropy repair (DESIGN §9) ---------------------------------------

std::vector<std::uint64_t> GossipMembership::compute_digest(
    NodeId node) const {
  // Per-bucket XOR fold of h(subject, believed-alive) over known entries.
  // Deliberately excludes the dt fields: those differ between any two
  // caches almost always (local staleness), and a digest over them would
  // flag every bucket every round. Alive/dead belief is the state whose
  // divergence anti-entropy exists to heal.
  std::vector<std::uint64_t> buckets(config_.anti_entropy_buckets, 0);
  const NodeCache& cache = caches_[node];
  const std::size_t n = caches_.size();
  for (NodeId subject = 0; subject < n; ++subject) {
    const auto* entry = cache.find(subject);
    if (entry == nullptr) continue;
    const std::uint64_t h =
        mix64(static_cast<std::uint64_t>(subject) * 2 +
              (entry->alive ? 1 : 0));
    buckets[subject % config_.anti_entropy_buckets] ^= h;
  }
  return buckets;
}

void GossipMembership::send_digest(NodeId from, NodeId to,
                                   std::uint8_t kind) {
  const auto buckets = compute_digest(from);
  Bytes msg;
  msg.reserve(3 + buckets.size() * 8);
  msg.push_back(kind);
  put_u16be(msg, static_cast<std::uint16_t>(buckets.size()));
  for (std::uint64_t b : buckets) put_u64be(msg, b);
  demux_.send(net::Channel::kGossip, from, to, msg);
  ++messages_sent_;
  bytes_sent_ += msg.size();
  ++control_stats_.digests_sent;
}

void GossipMembership::anti_entropy_tick(NodeId node) {
  if (!churn_.is_up(node)) return;
  const auto partners = pick_gossip_targets(node, 1, node_rngs_[node]);
  if (partners.empty()) return;
  ++control_stats_.anti_entropy_rounds;
  send_digest(node, partners.front(), kKindDigest);
}

void GossipMembership::handle_digest(NodeId from, NodeId to, ByteView payload,
                                     bool reply_with_digest) {
  if (payload.size() < 3) return;
  const std::size_t count = get_u16be(payload, 1);
  if (count == 0 || payload.size() < 3 + count * 8) return;
  const auto own = compute_digest(to);
  // Bucket counts must agree (same config everywhere in one deployment);
  // compare only the common prefix defensively.
  const std::size_t buckets = std::min(own.size(), count);
  std::vector<bool> differs(buckets, false);
  bool any = false;
  for (std::size_t b = 0; b < buckets; ++b) {
    if (own[b] != get_u64be(payload, 3 + b * 8)) {
      differs[b] = true;
      any = true;
    }
  }
  if (any) {
    // Push our records for every differing bucket; the peer's merge rules
    // keep whichever side is fresher, so pushing is safe even when the
    // peer is the one with better information.
    std::vector<NodeId> chunk;
    const std::size_t chunk_size =
        std::max<std::size_t>(config_.max_rumors * 4, 64);
    const std::size_t n = caches_.size();
    for (NodeId subject = 0; subject < n; ++subject) {
      if (subject == to) continue;
      const std::size_t idx = subject % config_.anti_entropy_buckets;
      if (idx >= buckets || !differs[idx]) continue;
      if (caches_[to].find(subject) == nullptr) continue;
      chunk.push_back(subject);
      ++control_stats_.repair_records_sent;
      if (chunk.size() == chunk_size) {
        send_records(to, from, kKindRepair, chunk);
        chunk.clear();
      }
    }
    if (!chunk.empty()) send_records(to, from, kKindRepair, chunk);
  }
  // Close the round trip with our own digest so the initiator can push the
  // buckets where *we* are behind. A reply never triggers another reply.
  if (reply_with_digest) send_digest(to, from, kKindDigestReply);
}

void GossipMembership::handle_message(NodeId from, NodeId to,
                                      ByteView payload) {
  if (!churn_.is_up(to) || payload.empty()) return;
  const std::uint8_t kind = payload[0];
  const SimTime now = simulator_.now();

  if (kind == kKindSyncRequest) {
    // Full-cache snapshot back to the joiner, chunked into gossip-sized
    // messages.
    const auto known = caches_[to].known_nodes();
    std::vector<NodeId> chunk;
    const std::size_t chunk_size =
        std::max<std::size_t>(config_.max_rumors * 4, 64);
    for (NodeId subject : known) {
      chunk.push_back(subject);
      if (chunk.size() == chunk_size) {
        send_records(to, from, kKindSyncResponse, chunk);
        chunk.clear();
      }
    }
    if (!chunk.empty()) send_records(to, from, kKindSyncResponse, chunk);
    return;
  }

  if (kind == kKindDigest || kind == kKindDigestReply) {
    if (config_.anti_entropy_interval <= 0) return;
    handle_digest(from, to, payload,
                  /*reply_with_digest=*/kind == kKindDigest);
    return;
  }

  if (kind != kKindGossip && kind != kKindSyncResponse && kind != kKindRepair) {
    return;
  }
  if (payload.size() < 3) return;
  const std::size_t count = get_u16be(payload, 1);
  std::vector<DecodedRecord> records;
  if (!decode_records(payload, 3, count, records)) return;

  NodeCache& cache = caches_[to];
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& rec = records[i];
    if (rec.subject == to) continue;
    const auto* prior = cache.find(rec.subject);
    const bool prior_alive = prior != nullptr && prior->alive;
    const bool prior_known = prior != nullptr;
    bool accepted;
    if (i == 0 && rec.subject == from) {
      // Sender's own record: a direct observation.
      cache.heard_directly(from, rec.info.dt_alive, now);
      accepted = true;
    } else {
      accepted = cache.merge_indirect(rec.subject, rec.info, now);
    }
    if (accepted && kind == kKindRepair) {
      ++control_stats_.repair_records_accepted;
    }
    // Re-gossip accepted *state changes* (alive flips or first sightings);
    // routine freshness updates don't need rumor amplification, and sync
    // responses never re-gossip. Repair-healed flips DO re-gossip: a node
    // whose blackout just ended is the best seed for spreading the healed
    // state onward.
    const bool changed = !prior_known || prior_alive != rec.info.alive;
    if (accepted && changed &&
        (kind == kKindGossip || kind == kKindRepair)) {
      enqueue_rumor(to, rec.subject);
    }
  }
}

double GossipMembership::belief_accuracy() const {
  const std::size_t n = caches_.size();
  std::uint64_t correct = 0;
  std::uint64_t total = 0;
  for (NodeId owner = 0; owner < n; ++owner) {
    if (!churn_.is_up(owner)) continue;
    for (NodeId subject = 0; subject < n; ++subject) {
      if (subject == owner) continue;
      const auto* entry = caches_[owner].find(subject);
      const bool believed_alive = entry != nullptr && entry->alive;
      ++total;
      if (believed_alive == churn_.is_up(subject)) ++correct;
    }
  }
  return total ? static_cast<double>(correct) / static_cast<double>(total)
               : 0.0;
}

void GossipMembership::byte_census(obs::capacity::ByteCensus& census) const {
  std::uint64_t cache_bytes =
      obs::capacity::vector_bytes(caches_);  // headers
  for (const NodeCache& cache : caches_) cache_bytes += cache.memory_bytes();
  census.add("membership", "node_caches", cache_bytes);

  std::uint64_t rumor_bytes = obs::capacity::vector_bytes(rumor_queues_);
  for (const auto& queue : rumor_queues_) {
    rumor_bytes += queue.size() * sizeof(Rumor);
  }
  rumor_bytes += obs::capacity::vector_bytes(rumor_members_);
  for (const auto& members : rumor_members_) {
    rumor_bytes += obs::capacity::hash_map_bytes(members);
  }
  census.add("membership", "rumor_queues", rumor_bytes);

  census.add("membership", "refresh_cursors",
             obs::capacity::vector_bytes(refresh_cursors_));
  census.add("membership", "node_rngs",
             obs::capacity::vector_bytes(node_rngs_));
  census.add("membership", "gossip_tasks",
             obs::capacity::vector_bytes(tasks_) +
                 obs::capacity::vector_bytes(anti_entropy_tasks_) +
                 (tasks_.size() + anti_entropy_tasks_.size()) *
                     sizeof(sim::PeriodicTask));
}

}  // namespace p2panon::membership
