// Per-node membership cache (paper §4.8, §4.9 "Learning Node Liveness
// Information").
//
// Each node seeking anonymity maintains one of these. An entry stores the
// subject's last-known liveness observation (dt_alive, dt_since) and the
// local timestamp t_last at which it was recorded. Merge rules follow the
// paper exactly:
//   - heard directly: overwrite dt_alive, reset dt_since to 0, t_last = now;
//   - heard indirectly: accept iff the received dt_since is smaller than
//     the entry's *effective* dt_since (stored dt_since + local staleness),
//     i.e. the received observation is fresher.
// Leave observations travel the same way with alive = false.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "membership/liveness.hpp"

namespace p2panon::membership {

/// Behavioral-suspicion policy (corruption resilience extension). The
/// paper's predictor captures *liveness*; suspicion captures *behavior* —
/// evidence that a node corrupted or stalled traffic, fed back from the
/// responder's ack channel. Scores decay exponentially so a quarantined
/// node earns its way back after `half_life`-scale good behavior.
struct SuspicionConfig {
  SimDuration half_life = 5 * kMinute;
  /// Decayed score at or above this excludes the node from mix selection
  /// entirely (quarantine) until it decays back below.
  double quarantine_threshold = 2.0;
  /// Biased mix choice scores candidates q / (1 + bias_penalty * s): any
  /// suspicion demotes a node below equally-live clean peers.
  double bias_penalty = 1.0;
};

/// Bounded-trust merge policy (control-plane resilience extension, DESIGN
/// §9). Liveness claims are bounded by physics: a node running since the
/// epoch can have accumulated at most `now` of uptime, and an indirect
/// claim about a node we have observed directly cannot exceed our own
/// observation extrapolated forward. Claims past those bounds (plus
/// `claim_slack` of tolerance for clock skew) are capped or rejected, and
/// the subject earns `inflation_suspicion` through the existing suspicion
/// machinery — so a persistent inflater quarantines itself out of the mix
/// pool.
struct TrustConfig {
  /// Tolerance added to every bound before a claim counts as inflated.
  SimDuration claim_slack = 30 * kSecond;
  /// Suspicion filed against the subject of an inflated claim (requires
  /// enable_suspicion; silently dropped otherwise).
  double inflation_suspicion = 0.5;
};

class NodeCache {
 public:
  struct Entry {
    NodeId node = kInvalidNode;
    bool known = false;
    bool alive = false;       // last observed state
    bool direct = false;      // last update was a first-hand observation
    SimDuration dt_alive = 0; // subject uptime at observation
    SimDuration dt_since = 0; // observation age when recorded
    SimTime t_last = 0;       // local time the record was updated
  };

  /// Always-on cheap tallies of merge outcomes, surfaced as the obs
  /// `membership_cache_updates_total{rule=...}` counters by the harness
  /// sampler.
  struct MergeStats {
    std::uint64_t updates_direct = 0;    // heard_directly / heard_left_directly
    std::uint64_t updates_indirect = 0;  // merge_indirect accepted
    std::uint64_t merges_rejected = 0;   // merge_indirect stale-rejected
    std::uint64_t inflated_rejected = 0; // bounded-trust capped or rejected
  };

  /// Record-age distribution over known-alive entries: how stale this
  /// node's view of the living network is. `age` of an entry is its
  /// effective dt_since (stored + local staleness). The staleness-aware
  /// mix selector degrades from biased to random selection on
  /// stale_fraction.
  struct AgeStats {
    std::size_t alive_known = 0;
    SimDuration age_p50 = 0;
    SimDuration age_p95 = 0;
    double stale_fraction = 0.0;  // entries older than the given threshold
  };

  explicit NodeCache(std::size_t num_nodes);

  /// Direct observation: we exchanged a packet with `node` right now and it
  /// reported `dt_alive` uptime.
  void heard_directly(NodeId node, SimDuration dt_alive, SimTime now);

  /// Direct observation of a leave (e.g. our keepalive to the node timed
  /// out, or it announced departure).
  void heard_left_directly(NodeId node, SimTime now);

  /// Indirect observation via gossip. Returns true if the record was
  /// accepted (fresher than what we had).
  bool merge_indirect(NodeId node, const LivenessInfo& info, SimTime now);

  /// Eq. 3 predictor for a cached node; 0 for unknown or believed-dead.
  double predictor(NodeId node, SimTime now) const;

  /// The observation we would gossip about `node` right now: stored record
  /// with local staleness folded into dt_since. nullopt when unknown.
  std::optional<LivenessInfo> observation(NodeId node, SimTime now) const;

  const Entry* find(NodeId node) const;
  std::size_t known_count() const { return known_count_; }
  std::size_t capacity() const { return entries_.size(); }

  /// All known node ids (regardless of believed state).
  std::vector<NodeId> known_nodes() const;

  /// `count` distinct nodes chosen uniformly from all known nodes,
  /// skipping `exclude` — the paper's *random* mix choice (no liveness
  /// consultation at all).
  std::vector<NodeId> sample_known(std::size_t count, Rng& rng,
                                   const std::unordered_set<NodeId>& exclude)
      const;

  /// Clock-aware overload: with suspicion enabled and `honor_quarantine`
  /// set, nodes whose decayed suspicion is over the quarantine threshold
  /// are excluded from the pool (MixSelector uses this). RNG draws are
  /// unchanged relative to the legacy overload while suspicion is off.
  std::vector<NodeId> sample_known(std::size_t count, Rng& rng,
                                   const std::unordered_set<NodeId>& exclude,
                                   SimTime now, bool honor_quarantine) const;

  /// `count` nodes with the highest Eq. 3 predictor, skipping `exclude` —
  /// the paper's *biased* mix choice.
  std::vector<NodeId> top_by_predictor(
      std::size_t count, SimTime now,
      const std::unordered_set<NodeId>& exclude) const;

  /// Drops everything (tests / node reset).
  void clear();

  // --- bounded trust (default OFF: until enable_bounded_trust() is
  // called, merge behavior is byte-identical to the seed) ---

  /// Turns bounded-trust merging on: direct observations cap the subject's
  /// claimed uptime at `now + claim_slack`, and indirect claims that exceed
  /// either the physical bound or our own direct observation are rejected
  /// (filing suspicion on the subject when suspicion is enabled).
  void enable_bounded_trust(const TrustConfig& config);
  bool bounded_trust_enabled() const { return trust_enabled_; }
  const TrustConfig& trust_config() const { return trust_config_; }

  const MergeStats& merge_stats() const { return merge_stats_; }

  /// Record-age percentiles and stale fraction over known-alive entries;
  /// `stale_after` is the age past which an entry counts as stale.
  AgeStats age_stats(SimTime now, SimDuration stale_after) const;

  // --- behavioral suspicion (default OFF: until enable_suspicion() is
  // called, every method below is a no-op / returns 0 and selection
  // behavior is byte-identical to the seed) ---

  /// Turns suspicion tracking on. Called at setup time by whoever owns the
  /// cache mutably (harness, tests); reporting itself is const, see below.
  void enable_suspicion(const SuspicionConfig& config);
  bool suspicion_enabled() const { return suspicion_enabled_; }
  const SuspicionConfig& suspicion_config() const { return suspicion_config_; }

  /// Accrues `amount` suspicion on `node` (corruption evidence ~1.0,
  /// stall evidence ~0.25), on top of the decayed current score. Const:
  /// suspicion is a behavioral annotation filed by read-only holders of
  /// the cache (Session observes it const), not membership state proper.
  void report_suspicion(NodeId node, double amount, SimTime now) const;

  /// Decayed suspicion score; 0 when disabled or never reported.
  double suspicion(NodeId node, SimTime now) const;

  /// True when the decayed score is at or above the quarantine threshold;
  /// quarantined nodes are skipped by sample_known and top_by_predictor.
  bool quarantined(NodeId node, SimTime now) const;

  std::size_t quarantined_count(SimTime now) const;

  /// Heap footprint (entries plus the lazily-sized suspicion table) for
  /// the capacity byte census. N caches of N entries each is the
  /// membership layer's O(N²) term.
  std::uint64_t memory_bytes() const {
    return static_cast<std::uint64_t>(entries_.capacity()) * sizeof(Entry) +
           static_cast<std::uint64_t>(suspicion_.capacity()) *
               sizeof(Suspicion);
  }

 private:
  std::vector<Entry> entries_;
  std::size_t known_count_ = 0;
  bool trust_enabled_ = false;
  TrustConfig trust_config_;
  MergeStats merge_stats_;

  struct Suspicion {
    double score = 0.0;
    SimTime updated = 0;
  };
  double decayed_suspicion(NodeId node, SimTime now) const;

  bool suspicion_enabled_ = false;
  SuspicionConfig suspicion_config_;
  mutable std::vector<Suspicion> suspicion_;
};

}  // namespace p2panon::membership
