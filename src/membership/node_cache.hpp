// Per-node membership cache (paper §4.8, §4.9 "Learning Node Liveness
// Information").
//
// Each node seeking anonymity maintains one of these. An entry stores the
// subject's last-known liveness observation (dt_alive, dt_since) and the
// local timestamp t_last at which it was recorded. Merge rules follow the
// paper exactly:
//   - heard directly: overwrite dt_alive, reset dt_since to 0, t_last = now;
//   - heard indirectly: accept iff the received dt_since is smaller than
//     the entry's *effective* dt_since (stored dt_since + local staleness),
//     i.e. the received observation is fresher.
// Leave observations travel the same way with alive = false.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "membership/liveness.hpp"

namespace p2panon::membership {

class NodeCache {
 public:
  struct Entry {
    NodeId node = kInvalidNode;
    bool known = false;
    bool alive = false;       // last observed state
    SimDuration dt_alive = 0; // subject uptime at observation
    SimDuration dt_since = 0; // observation age when recorded
    SimTime t_last = 0;       // local time the record was updated
  };

  explicit NodeCache(std::size_t num_nodes);

  /// Direct observation: we exchanged a packet with `node` right now and it
  /// reported `dt_alive` uptime.
  void heard_directly(NodeId node, SimDuration dt_alive, SimTime now);

  /// Direct observation of a leave (e.g. our keepalive to the node timed
  /// out, or it announced departure).
  void heard_left_directly(NodeId node, SimTime now);

  /// Indirect observation via gossip. Returns true if the record was
  /// accepted (fresher than what we had).
  bool merge_indirect(NodeId node, const LivenessInfo& info, SimTime now);

  /// Eq. 3 predictor for a cached node; 0 for unknown or believed-dead.
  double predictor(NodeId node, SimTime now) const;

  /// The observation we would gossip about `node` right now: stored record
  /// with local staleness folded into dt_since. nullopt when unknown.
  std::optional<LivenessInfo> observation(NodeId node, SimTime now) const;

  const Entry* find(NodeId node) const;
  std::size_t known_count() const { return known_count_; }
  std::size_t capacity() const { return entries_.size(); }

  /// All known node ids (regardless of believed state).
  std::vector<NodeId> known_nodes() const;

  /// `count` distinct nodes chosen uniformly from all known nodes,
  /// skipping `exclude` — the paper's *random* mix choice (no liveness
  /// consultation at all).
  std::vector<NodeId> sample_known(std::size_t count, Rng& rng,
                                   const std::unordered_set<NodeId>& exclude)
      const;

  /// `count` nodes with the highest Eq. 3 predictor, skipping `exclude` —
  /// the paper's *biased* mix choice.
  std::vector<NodeId> top_by_predictor(
      std::size_t count, SimTime now,
      const std::unordered_set<NodeId>& exclude) const;

  /// Drops everything (tests / node reset).
  void clear();

 private:
  std::vector<Entry> entries_;
  std::size_t known_count_ = 0;
};

}  // namespace p2panon::membership
