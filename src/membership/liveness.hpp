// Node liveness prediction (paper §4.9).
//
// Under Pareto(alpha, beta) lifetimes, the probability that a node alive
// for dt_alive is still alive dt_since later is
//
//   p = (dt_alive / (dt_alive + dt_since))^alpha            (Eq. 1)
//
// Since p is monotone in q = dt_alive / (dt_alive + dt_since) (Eq. 2),
// mix selection ranks by q directly and never needs alpha. When a cached
// record is (t_now - t_last) old, the staleness is added to dt_since:
//
//   q = dt_alive / (dt_alive + dt_since + (t_now - t_last))  (Eq. 3)
#pragma once

#include "common/time.hpp"

namespace p2panon::membership {

/// A liveness observation as gossiped between nodes: how long the subject
/// had been up when observed, and how stale that observation was at the
/// moment of sending.
struct LivenessInfo {
  SimDuration dt_alive = 0;  // observed uptime
  SimDuration dt_since = 0;  // age of the observation when recorded
  bool alive = true;         // false: the subject was observed leaving
};

/// Eq. 2: q in [0, 1]; 0 when the node was never seen alive.
double liveness_predictor(SimDuration dt_alive, SimDuration dt_since);

/// Eq. 3: predictor with local staleness folded in.
double liveness_predictor(SimDuration dt_alive, SimDuration dt_since,
                          SimTime t_last, SimTime t_now);

/// Eq. 1: p = q^alpha.
double alive_probability(double predictor, double pareto_shape);

}  // namespace p2panon::membership
