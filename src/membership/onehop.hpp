// OneHop-style hierarchical membership dissemination (Gupta, Liskov,
// Rodrigues, NSDI'04), simplified to the level the paper depends on.
//
// The id space is partitioned into `units`. Each unit has a leader (the
// live node with the lowest id in the unit). Membership events flow:
//
//   observer --(event)--> own unit leader --(event)--> all unit leaders
//        unit leader --(periodic keepalive batch)--> unit members
//
// which is the paper's "hierarchical gossip protocol (among slice leaders,
// unit leaders and unit members)" collapsed to one leader level. Liveness
// information (dt_alive / dt_since) is piggybacked on every hop, exactly as
// the paper's augmentation of OneHop prescribes. Leader election is
// resolved from churn ground truth when a leader dies (a simulator shortcut
// for OneHop's in-band leader recovery; see DESIGN.md substitutions).
//
// GossipMembership is the default provider; this variant exists to show
// the protocols are agnostic to the dissemination substrate and to compare
// dissemination quality (tests/membership_test.cpp).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "churn/churn_model.hpp"
#include "common/rng.hpp"
#include "membership/node_cache.hpp"
#include "membership/provider.hpp"
#include "net/demux.hpp"
#include "sim/simulator.hpp"

namespace p2panon::membership {

struct OneHopConfig {
  std::size_t units = 32;                        // id-space partitions
  SimDuration keepalive_interval = 2 * kSecond;  // leader -> members batch
  SimDuration detection_delay_min = 500 * kMillisecond;
  SimDuration detection_delay_max = 2 * kSecond;
  bool seed_full_membership = true;

  // --- Control-plane resilience (DESIGN §9); defaults OFF = byte-
  // identical to the seed. ---

  /// Deterministic leader failover. The ground-truth mode resolves each
  /// unit's leader from churn state directly — a simulator shortcut that a
  /// fault-plan crash (invisible to the churn model) silently defeats: the
  /// crashed leader keeps its role while every keepalive it sends is
  /// dropped, and the unit's caches rot. With failover on, leadership is a
  /// pure function of each node's *believed* membership (lowest believed-
  /// alive id in the unit): every node runs a watchdog; members that miss
  /// `leader_miss_threshold` keepalive intervals declare the leader dead,
  /// re-elect locally, and the new leader announces itself to the unit and
  /// to the other leaders. A recovered lower-id leader reclaims the role
  /// automatically the moment its keepalives are heard again.
  bool deterministic_failover = false;
  std::size_t leader_miss_threshold = 3;
};

class OneHopMembership final : public MembershipProvider {
 public:
  OneHopMembership(sim::Simulator& simulator, net::Demux& demux,
                   churn::ChurnModel& churn_model, OneHopConfig config,
                   Rng rng);
  OneHopMembership(const OneHopMembership&) = delete;
  OneHopMembership& operator=(const OneHopMembership&) = delete;

  void start() override;

  NodeCache& cache(NodeId node) override { return caches_[node]; }
  const NodeCache& cache(NodeId node) const override { return caches_[node]; }

  SimDuration own_uptime(NodeId node) const override;

  /// Current leader of a unit (live node with lowest id), kInvalidNode if
  /// the whole unit is down. Ground-truth view (churn only — fault-plan
  /// crashes are invisible here; see OneHopConfig::deterministic_failover).
  NodeId unit_leader(std::size_t unit) const;

  /// The leader `observer` would follow: the lowest id in the unit that
  /// observer believes alive (itself counts). Pure function of the
  /// observer's cache — no hidden election state, so two nodes with the
  /// same beliefs always agree.
  NodeId believed_leader(NodeId observer, std::size_t unit) const;

  std::size_t unit_of(NodeId node) const;
  std::size_t num_units() const { return config_.units; }

  double belief_accuracy() const override;

  std::size_t num_nodes() const override { return caches_.size(); }
  std::uint64_t messages_sent() const override { return messages_sent_; }
  std::uint64_t bytes_sent() const override { return bytes_sent_; }
  ControlStats control_stats() const override { return control_stats_; }

  void byte_census(obs::capacity::ByteCensus& census) const override;

 private:
  void on_churn(NodeId node, bool up, SimTime when);
  void deliver_event(NodeId observer, NodeId subject);
  void handle_message(NodeId from, NodeId to, ByteView payload);
  void keepalive_tick(std::size_t unit);
  void watchdog_tick(NodeId node);
  void keepalive_send(NodeId leader, std::size_t unit, bool always_send);
  void announce_leader(NodeId node, std::size_t unit);
  void send_event(NodeId from, NodeId to, std::uint8_t kind, NodeId subject,
                  const LivenessInfo& info);
  void send_snapshot(NodeId leader, NodeId joiner);
  /// The unit's id range [begin, end).
  std::pair<std::size_t, std::size_t> unit_range(std::size_t unit) const;

  sim::Simulator& simulator_;
  net::Demux& demux_;
  churn::ChurnModel& churn_;
  OneHopConfig config_;
  Rng rng_;

  std::vector<NodeCache> caches_;
  // Events a leader has accepted and not yet pushed to its unit members.
  std::vector<std::vector<NodeId>> pending_unit_events_;
  std::vector<std::unique_ptr<sim::PeriodicTask>> keepalive_tasks_;
  // Failover mode: per-node watchdogs (phases from per-node streams) and
  // the last time each node heard from a unit leader.
  std::vector<std::unique_ptr<sim::PeriodicTask>> watchdog_tasks_;
  std::vector<Rng> node_rngs_;
  std::vector<SimTime> last_leader_heard_;

  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  ControlStats control_stats_;
};

}  // namespace p2panon::membership
