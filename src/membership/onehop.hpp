// OneHop-style hierarchical membership dissemination (Gupta, Liskov,
// Rodrigues, NSDI'04), simplified to the level the paper depends on.
//
// The id space is partitioned into `units`. Each unit has a leader (the
// live node with the lowest id in the unit). Membership events flow:
//
//   observer --(event)--> own unit leader --(event)--> all unit leaders
//        unit leader --(periodic keepalive batch)--> unit members
//
// which is the paper's "hierarchical gossip protocol (among slice leaders,
// unit leaders and unit members)" collapsed to one leader level. Liveness
// information (dt_alive / dt_since) is piggybacked on every hop, exactly as
// the paper's augmentation of OneHop prescribes. Leader election is
// resolved from churn ground truth when a leader dies (a simulator shortcut
// for OneHop's in-band leader recovery; see DESIGN.md substitutions).
//
// GossipMembership is the default provider; this variant exists to show
// the protocols are agnostic to the dissemination substrate and to compare
// dissemination quality (tests/membership_test.cpp).
#pragma once

#include <memory>
#include <vector>

#include "churn/churn_model.hpp"
#include "common/rng.hpp"
#include "membership/node_cache.hpp"
#include "net/demux.hpp"
#include "sim/simulator.hpp"

namespace p2panon::membership {

struct OneHopConfig {
  std::size_t units = 32;                        // id-space partitions
  SimDuration keepalive_interval = 2 * kSecond;  // leader -> members batch
  SimDuration detection_delay_min = 500 * kMillisecond;
  SimDuration detection_delay_max = 2 * kSecond;
  bool seed_full_membership = true;
};

class OneHopMembership {
 public:
  OneHopMembership(sim::Simulator& simulator, net::Demux& demux,
                   churn::ChurnModel& churn_model, OneHopConfig config,
                   Rng rng);
  OneHopMembership(const OneHopMembership&) = delete;
  OneHopMembership& operator=(const OneHopMembership&) = delete;

  void start();

  NodeCache& cache(NodeId node) { return caches_[node]; }
  const NodeCache& cache(NodeId node) const { return caches_[node]; }

  SimDuration own_uptime(NodeId node) const;

  /// Current leader of a unit (live node with lowest id), kInvalidNode if
  /// the whole unit is down.
  NodeId unit_leader(std::size_t unit) const;
  std::size_t unit_of(NodeId node) const;
  std::size_t num_units() const { return config_.units; }

  double belief_accuracy() const;

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  void on_churn(NodeId node, bool up, SimTime when);
  void deliver_event(NodeId observer, NodeId subject);
  void handle_message(NodeId from, NodeId to, ByteView payload);
  void keepalive_tick(std::size_t unit);
  void send_event(NodeId from, NodeId to, std::uint8_t kind, NodeId subject,
                  const LivenessInfo& info);
  void send_snapshot(NodeId leader, NodeId joiner);

  sim::Simulator& simulator_;
  net::Demux& demux_;
  churn::ChurnModel& churn_;
  OneHopConfig config_;
  Rng rng_;

  std::vector<NodeCache> caches_;
  // Events a leader has accepted and not yet pushed to its unit members.
  std::vector<std::vector<NodeId>> pending_unit_events_;
  std::vector<std::unique_ptr<sim::PeriodicTask>> keepalive_tasks_;

  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace p2panon::membership
