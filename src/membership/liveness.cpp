#include "membership/liveness.hpp"

#include <cmath>

namespace p2panon::membership {

double liveness_predictor(SimDuration dt_alive, SimDuration dt_since) {
  if (dt_alive <= 0) return 0.0;
  if (dt_since < 0) dt_since = 0;
  return static_cast<double>(dt_alive) /
         static_cast<double>(dt_alive + dt_since);
}

double liveness_predictor(SimDuration dt_alive, SimDuration dt_since,
                          SimTime t_last, SimTime t_now) {
  const SimDuration staleness = t_now > t_last ? t_now - t_last : 0;
  return liveness_predictor(dt_alive, dt_since + staleness);
}

double alive_probability(double predictor, double pareto_shape) {
  if (predictor <= 0.0) return 0.0;
  if (predictor >= 1.0) return 1.0;
  return std::pow(predictor, pareto_shape);
}

}  // namespace p2panon::membership
