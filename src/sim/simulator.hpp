// Discrete-event simulator core.
//
// Single-threaded event loop over an EventQueue. The simulator owns virtual
// time: `now()` only advances when an event fires. All substrates (churn,
// transport, gossip, protocols) schedule callbacks here; nothing in the
// system observes wall-clock time.
//
// Typical use:
//   Simulator simulator;
//   simulator.schedule_after(10 * kSecond, [&] { ... });
//   simulator.run_until(2 * kHour);
#pragma once

#include <cstdint>
#include <functional>

#include "common/time.hpp"
#include "sim/event_queue.hpp"

namespace p2panon::sim {

class Simulator : public Clock {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const override { return now_; }

  /// Schedules at an absolute virtual time; `when` must be >= now().
  /// `type` tags the event for the capacity loop profiler; untyped
  /// events fall into the profiler's catch-all bucket.
  EventId schedule_at(SimTime when, EventQueue::Callback fn,
                      obs::capacity::EventTypeId type =
                          obs::capacity::kUntypedEvent);

  /// Schedules `delay` from now; negative delays clamp to now.
  EventId schedule_after(SimDuration delay, EventQueue::Callback fn,
                         obs::capacity::EventTypeId type =
                             obs::capacity::kUntypedEvent);

  bool cancel(EventId id) { return queue_.cancel(id); }
  bool pending(EventId id) const { return queue_.pending(id); }

  /// Runs events until the queue drains or stop() is called.
  void run();

  /// Runs events with time <= deadline; afterwards now() == deadline unless
  /// stopped earlier. Events scheduled beyond the deadline stay pending.
  void run_until(SimTime deadline);

  /// Runs at most `max_events` events. Returns the number executed.
  std::size_t run_steps(std::size_t max_events);

  /// Requests the run loop to return after the current event.
  void stop() { stopped_ = true; }

  bool idle() { return queue_.next_time() == kNeverTime; }
  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }
  /// Events ever scheduled; scheduled - executed - pending = cancellations
  /// (timer churn), which the obs stats sampler reports.
  std::uint64_t scheduled_total() const { return queue_.scheduled_total(); }

  /// Estimated event-queue heap footprint (capacity byte census).
  std::uint64_t queue_memory_bytes() const { return queue_.memory_bytes(); }

  /// Clears all pending events and resets time to zero.
  void reset();

  /// Attaches (or detaches, with nullptr) the capacity loop profiler.
  /// The profiler is passive — it only reads wall clocks around event
  /// callbacks — so attaching it never changes simulated outcomes; the
  /// default (null) pays one branch per event. Not owned; must outlive
  /// the run.
  void set_profiler(obs::capacity::LoopProfiler* profiler) {
    profiler_ = profiler;
  }
  obs::capacity::LoopProfiler* profiler() const { return profiler_; }

 private:
  bool step();  // fires one event; false when queue empty

  EventQueue queue_;
  SimTime now_ = 0;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
  obs::capacity::LoopProfiler* profiler_ = nullptr;
};

/// Repeating timer helper: reschedules itself every `interval` until
/// cancelled or its owner destroys it. The callback may call cancel().
class PeriodicTask {
 public:
  PeriodicTask(Simulator& simulator, SimDuration interval,
               std::function<void()> fn,
               obs::capacity::EventTypeId type =
                   obs::capacity::kUntypedEvent);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start();                 // first fire after one interval
  void start_at(SimTime when);  // first fire at an absolute time
  void cancel();
  bool active() const { return event_ != kInvalidEventId; }
  void set_interval(SimDuration interval) { interval_ = interval; }

 private:
  void fire();

  Simulator& simulator_;
  SimDuration interval_;
  std::function<void()> fn_;
  obs::capacity::EventTypeId type_;
  EventId event_ = kInvalidEventId;
};

}  // namespace p2panon::sim
