#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace p2panon::sim {

EventId EventQueue::schedule(SimTime when, Callback fn,
                             obs::capacity::EventTypeId type) {
  const EventId id = next_id_++;
  heap_.push(
      Entry{when, id, std::move(fn), obs::current_correlation(), type});
  live_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  // Erasing from live_ turns the heap entry into a tombstone; it is skipped
  // when it reaches the top.
  return live_.erase(id) > 0;
}

void EventQueue::drop_tombstone_head() {
  while (!heap_.empty() && live_.count(heap_.top().id) == 0) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() {
  drop_tombstone_head();
  if (heap_.empty()) return kNeverTime;
  return heap_.top().time;
}

EventQueue::Ready EventQueue::pop() {
  drop_tombstone_head();
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::pop on empty queue");
  }
  // priority_queue::top() returns const&; copy the entry out (the callback
  // is a std::function whose copy is cheap relative to event dispatch) and
  // then discard the heap slot.
  Entry top = heap_.top();
  heap_.pop();
  live_.erase(top.id);
  return Ready{top.time, top.id, std::move(top.fn), top.corr, top.type};
}

void EventQueue::clear() {
  heap_ = {};
  live_.clear();
}

}  // namespace p2panon::sim
