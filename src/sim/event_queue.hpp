// Pending-event set for the discrete-event simulator.
//
// A binary min-heap keyed on (time, sequence number); the sequence number
// breaks ties so same-time events fire in scheduling order, which keeps runs
// deterministic. Cancellation is lazy: a cancelled id leaves a tombstone in
// the heap that is dropped when it surfaces, so cancel is O(1) and pop stays
// O(log n) amortized.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"
#include "obs/capacity/loop_profiler.hpp"
#include "obs/trace.hpp"

namespace p2panon::sim {

using EventId = std::uint64_t;
constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `when`. Returns a handle usable with
  /// cancel(). Events at equal times run in insertion order. The thread's
  /// current correlation id is captured into the entry so causal chains
  /// survive the trip through the queue (see obs/trace.hpp). `type` tags
  /// the event for the capacity loop profiler (obs/capacity): subsystems
  /// intern a type id once and pass it on every schedule; untyped events
  /// land in the profiler's catch-all bucket.
  EventId schedule(SimTime when, Callback fn,
                   obs::capacity::EventTypeId type =
                       obs::capacity::kUntypedEvent);

  /// Cancels a pending event. Returns true if the event was still pending;
  /// cancelling an already-fired or already-cancelled id is a no-op.
  bool cancel(EventId id);

  /// True if the id refers to an event that has neither fired nor been
  /// cancelled.
  bool pending(EventId id) const { return live_.count(id) > 0; }

  bool empty() const { return live_.empty(); }
  std::size_t size() const { return live_.size(); }

  /// Time of the earliest pending event; kNeverTime when empty.
  SimTime next_time();

  /// Removes and returns the earliest pending event.
  /// Precondition: !empty().
  struct Ready {
    SimTime time;
    EventId id;
    Callback fn;
    obs::CorrelationId corr;
    obs::capacity::EventTypeId type;
  };
  Ready pop();

  /// Drops all pending events.
  void clear();

  /// Total events ever scheduled (diagnostics).
  std::uint64_t scheduled_total() const { return next_id_ - 1; }

  /// Estimated heap footprint (heap entries incl. tombstones plus the
  /// live-id set) for the capacity byte census. An estimate: the heap's
  /// backing vector capacity is not observable through priority_queue.
  std::uint64_t memory_bytes() const {
    return static_cast<std::uint64_t>(heap_.size()) * sizeof(Entry) +
           static_cast<std::uint64_t>(live_.bucket_count()) * sizeof(void*) +
           static_cast<std::uint64_t>(live_.size()) *
               (sizeof(EventId) + 2 * sizeof(void*));
  }

 private:
  struct Entry {
    SimTime time;
    EventId id;
    Callback fn;
    obs::CorrelationId corr;
    obs::capacity::EventTypeId type;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  void drop_tombstone_head();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> live_;  // scheduled, not yet fired or cancelled
  EventId next_id_ = 1;
};

}  // namespace p2panon::sim
