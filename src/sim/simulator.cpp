#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace p2panon::sim {

EventId Simulator::schedule_at(SimTime when, EventQueue::Callback fn,
                               obs::capacity::EventTypeId type) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at in the past");
  }
  return queue_.schedule(when, std::move(fn), type);
}

EventId Simulator::schedule_after(SimDuration delay, EventQueue::Callback fn,
                                  obs::capacity::EventTypeId type) {
  if (delay < 0) delay = 0;
  return queue_.schedule(now_ + delay, std::move(fn), type);
}

bool Simulator::step() {
  if (queue_.next_time() == kNeverTime) return false;
  auto ready = queue_.pop();
  now_ = ready.time;
  ++executed_;
  // Restore the correlation id captured at schedule() time so everything the
  // callback does (including scheduling further events) stays on the chain.
  obs::CorrelationScope scope(ready.corr);
  if (profiler_ != nullptr) {
    profiler_->dispatch(ready.type, ready.fn);
  } else {
    ready.fn();
  }
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  stopped_ = false;
  while (!stopped_) {
    const SimTime next = queue_.next_time();
    if (next == kNeverTime || next > deadline) break;
    step();
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

std::size_t Simulator::run_steps(std::size_t max_events) {
  stopped_ = false;
  std::size_t n = 0;
  while (n < max_events && !stopped_ && step()) ++n;
  return n;
}

void Simulator::reset() {
  queue_.clear();
  now_ = 0;
  stopped_ = false;
  executed_ = 0;
}

PeriodicTask::PeriodicTask(Simulator& simulator, SimDuration interval,
                           std::function<void()> fn,
                           obs::capacity::EventTypeId type)
    : simulator_(simulator),
      interval_(interval),
      fn_(std::move(fn)),
      type_(type) {}

PeriodicTask::~PeriodicTask() { cancel(); }

void PeriodicTask::start() {
  cancel();
  event_ = simulator_.schedule_after(interval_, [this] { fire(); }, type_);
}

void PeriodicTask::start_at(SimTime when) {
  cancel();
  event_ = simulator_.schedule_at(when, [this] { fire(); }, type_);
}

void PeriodicTask::cancel() {
  if (event_ != kInvalidEventId) {
    simulator_.cancel(event_);
    event_ = kInvalidEventId;
  }
}

void PeriodicTask::fire() {
  // Reschedule before running so the callback can cancel() the series.
  event_ = simulator_.schedule_after(interval_, [this] { fire(); }, type_);
  fn_();
}

}  // namespace p2panon::sim
