// Initiator-anonymity analysis (paper §5, Eq. 4).
//
// With N nodes, fraction f of colluding attackers and constant path length
// L, an attacker occupying path positions guesses the initiator correctly
// when the first relay is malicious (Case 1); otherwise every honest node
// is equally likely (Case 2). The probability the immediate predecessor x
// of the first malicious relay is the initiator:
//
//   P(x = I) = (1/L) * S + (1 / (N(1 - f))) * (1 - 1/L) * S,
//   S = sum_{i=1}^{L} i f^i (1 - f)^{L - i}
//
// We implement the closed form plus a Monte-Carlo estimator of the
// first-relay-compromise probability for cross-validation, and degree of
// anonymity metrics derived from it.
#pragma once

#include <cstddef>

#include "common/rng.hpp"

namespace p2panon::analysis {

/// P(Case 1): the first relay of an L-relay path is malicious, conditioned
/// the paper's way: sum_i (i/L) f^i (1-f)^{L-i}.
double first_relay_compromised_weight(double f, std::size_t L);

/// Eq. 4: probability the attacker's guess (immediate predecessor) is the
/// initiator.
double initiator_identification_probability(std::size_t N, double f,
                                            std::size_t L);

/// Monte-Carlo: places L relays (each malicious with prob f) and measures
/// how often the first relay is malicious — sanity check that the analysis
/// weight stays below the raw compromise rate.
double first_relay_compromised_monte_carlo(double f, std::size_t L,
                                           std::size_t trials, Rng& rng);

/// With k node-disjoint paths, the initiator is exposed if ANY path's first
/// relay is malicious: 1 - (1 - f)^k (first relays are k distinct nodes).
/// Quantifies the multipath anonymity cost the paper's §5 argues is
/// acceptable.
double multipath_first_relay_exposure(double f, std::size_t k);

/// Size of the honest pool an attacker is left guessing over in Case 2:
/// round(N * (1 - f)), floored at 1 when any honest node exists (N >= 1,
/// f < 1) and 0 for the fully-degenerate inputs (N = 0 or f = 1).
std::size_t honest_anonymity_set(std::size_t N, double f);

/// Entropy (bits) of a uniform posterior over `set_size` candidates — the
/// closed-form comparator for empirical posterior entropy. 0 for
/// set_size <= 1.
double uniform_entropy_bits(std::size_t set_size);

// All helpers accept the degenerate corners of a sweep grid — f = 0,
// f = 1, L = 0, k = 0, N = 0 — and return the limit value (a probability
// in [0, 1] or a size) instead of NaN/throwing; only f outside [0, 1]
// is rejected.

}  // namespace p2panon::analysis
