// The paper's Bernoulli path-failure model (§4.7).
//
// Paths fail independently; a path of L relays succeeds with probability
// p = pa^L where pa is node availability (the responder is assumed up).
// SimEra with k paths and replication factor r delivers iff at least k/r
// paths succeed:
//
//   P(k) = sum_{i = ceil(k/r)}^{k} C(k, i) p^i (1 - p)^{k - i}
//
// Figures 2-4 are drawn from this model, both in closed form and by
// Monte-Carlo simulation of the Bernoulli process (which the tests check
// against each other).
#pragma once

#include <cstddef>

#include "common/rng.hpp"

namespace p2panon::analysis {

/// p = pa^L.
double path_success_probability(double node_availability,
                                std::size_t path_length);

/// Binomial tail: P(at least `needed` of `k` trials succeed | p).
double at_least_successes(std::size_t needed, std::size_t k, double p);

/// The paper's P(k) for SimEra: at least ceil(k/r) of k paths succeed.
/// `r` need not divide k; the paper's plots use k a multiple of r.
double simera_success_probability(std::size_t k, double r, double p);

/// Monte-Carlo estimate of the same quantity (used to validate the closed
/// form and drive Figure 2/3 the way the paper's "simulations" do).
double simera_success_monte_carlo(std::size_t k, double r, double p,
                                  std::size_t trials, Rng& rng);

/// log C(n, k) via lgamma (stable for large n).
double log_binomial(std::size_t n, std::size_t k);

}  // namespace p2panon::analysis
