#include "analysis/path_model.hpp"

#include <cmath>
#include <stdexcept>

namespace p2panon::analysis {

double path_success_probability(double node_availability,
                                std::size_t path_length) {
  if (node_availability < 0.0 || node_availability > 1.0) {
    throw std::invalid_argument("availability must be in [0, 1]");
  }
  return std::pow(node_availability, static_cast<double>(path_length));
}

double log_binomial(std::size_t n, std::size_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double at_least_successes(std::size_t needed, std::size_t k, double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("p must be in [0, 1]");
  }
  if (needed == 0) return 1.0;
  if (needed > k) return 0.0;
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  double total = 0.0;
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  for (std::size_t i = needed; i <= k; ++i) {
    const double log_term = log_binomial(k, i) +
                            static_cast<double>(i) * log_p +
                            static_cast<double>(k - i) * log_q;
    total += std::exp(log_term);
  }
  return std::min(total, 1.0);
}

double simera_success_probability(std::size_t k, double r, double p) {
  if (k == 0 || r < 1.0) {
    throw std::invalid_argument("need k >= 1 and r >= 1");
  }
  const auto needed = static_cast<std::size_t>(
      std::ceil(static_cast<double>(k) / r - 1e-12));
  return at_least_successes(std::max<std::size_t>(needed, 1), k, p);
}

double simera_success_monte_carlo(std::size_t k, double r, double p,
                                  std::size_t trials, Rng& rng) {
  const auto needed = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(static_cast<double>(k) / r - 1e-12)));
  std::size_t wins = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    std::size_t alive = 0;
    for (std::size_t j = 0; j < k; ++j) {
      if (rng.bernoulli(p)) ++alive;
    }
    if (alive >= needed) ++wins;
  }
  return static_cast<double>(wins) / static_cast<double>(trials);
}

}  // namespace p2panon::analysis
