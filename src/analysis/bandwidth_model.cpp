#include "analysis/bandwidth_model.hpp"

#include <stdexcept>

namespace p2panon::analysis {

double BandwidthModel::per_path_payload(std::size_t k, double r) const {
  if (k == 0 || r < 1.0) {
    throw std::invalid_argument("need k >= 1 and r >= 1");
  }
  return static_cast<double>(message_size) * r / static_cast<double>(k) +
         static_cast<double>(per_message_overhead);
}

double BandwidthModel::full_delivery_cost(std::size_t k, double r) const {
  const double hops = static_cast<double>(path_length + 1);
  return static_cast<double>(k) * per_path_payload(k, r) * hops;
}

double BandwidthModel::expected_cost(std::size_t k, double r, double p,
                                     double partial_fraction) const {
  const double hops = static_cast<double>(path_length + 1);
  const double per_path = per_path_payload(k, r);
  const double alive_cost = per_path * hops;
  const double dead_cost = per_path * hops * partial_fraction;
  return static_cast<double>(k) *
         (p * alive_cost + (1.0 - p) * dead_cost);
}

}  // namespace p2panon::analysis
