#include "analysis/observations.hpp"

#include "analysis/path_model.hpp"

namespace p2panon::analysis {

const char* to_string(ObservationRegime regime) {
  switch (regime) {
    case ObservationRegime::kAlwaysSplit: return "observation-1(always split)";
    case ObservationRegime::kSplitIfLarge: return "observation-2(split if k large)";
    case ObservationRegime::kNeverSplit: return "observation-3(never split)";
  }
  return "?";
}

ObservationRegime classify_regime(double p, double r) {
  const double pr = p * r;
  if (pr > 4.0 / 3.0) return ObservationRegime::kAlwaysSplit;
  if (pr > 1.0) return ObservationRegime::kSplitIfLarge;
  return ObservationRegime::kNeverSplit;
}

ObservationRegime observe_regime(double p, std::size_t r,
                                 std::size_t k_max) {
  // Sample P at multiples of r and look at the monotonicity pattern.
  bool ever_decreased = false;
  bool ever_increased = false;
  bool increased_after_decrease = false;
  double prev = simera_success_probability(r, static_cast<double>(r), p);
  for (std::size_t k = 2 * r; k <= k_max; k += r) {
    const double current =
        simera_success_probability(k, static_cast<double>(r), p);
    if (current > prev + 1e-12) {
      ever_increased = true;
      if (ever_decreased) increased_after_decrease = true;
    } else if (current < prev - 1e-12) {
      ever_decreased = true;
    }
    prev = current;
  }
  if (!ever_decreased && ever_increased) {
    return ObservationRegime::kAlwaysSplit;
  }
  if (increased_after_decrease) return ObservationRegime::kSplitIfLarge;
  return ObservationRegime::kNeverSplit;
}

std::size_t crossover_k(double p, std::size_t r, std::size_t k_max) {
  double prev = simera_success_probability(r, static_cast<double>(r), p);
  std::size_t dip_seen_at = 0;
  for (std::size_t k = 2 * r; k <= k_max; k += r) {
    const double current =
        simera_success_probability(k, static_cast<double>(r), p);
    if (current < prev - 1e-12 && dip_seen_at == 0) {
      dip_seen_at = k;
    }
    if (dip_seen_at != 0 && current > prev + 1e-12) {
      return k - r;  // last k before P started rising again
    }
    prev = current;
  }
  return 0;
}

ParameterChoice best_effort_parameters(double node_availability,
                                       std::size_t path_length,
                                       std::size_t max_r,
                                       std::size_t max_k) {
  const double p = path_success_probability(node_availability, path_length);
  ParameterChoice best;
  for (std::size_t r = 1; r <= max_r; ++r) {
    for (std::size_t k = r; k <= max_k; k += r) {
      const double success =
          simera_success_probability(k, static_cast<double>(r), p);
      // Strictly-better wins; ties keep the earlier (cheaper r, smaller k).
      if (success > best.success + 1e-12) {
        best = ParameterChoice{k, r, success, static_cast<double>(r)};
      }
    }
  }
  return best;
}

std::vector<ParameterChoice> advise_parameters(double node_availability,
                                               std::size_t path_length,
                                               double target_success,
                                               std::size_t max_r,
                                               std::size_t max_k) {
  const double p = path_success_probability(node_availability, path_length);
  std::vector<ParameterChoice> choices;
  for (std::size_t r = 1; r <= max_r; ++r) {
    for (std::size_t k = r; k <= max_k; k += r) {
      const double success =
          simera_success_probability(k, static_cast<double>(r), p);
      if (success >= target_success) {
        choices.push_back(ParameterChoice{
            k, r, success, static_cast<double>(r)});
        break;  // smallest k for this r
      }
    }
  }
  return choices;
}

}  // namespace p2panon::analysis
