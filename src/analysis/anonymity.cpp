#include "analysis/anonymity.hpp"

#include <cmath>
#include <stdexcept>

namespace p2panon::analysis {

namespace {
void check_f(double f) {
  if (f < 0.0 || f >= 1.0) {
    throw std::invalid_argument("fraction of attackers must be in [0, 1)");
  }
}
}  // namespace

double first_relay_compromised_weight(double f, std::size_t L) {
  check_f(f);
  double total = 0.0;
  for (std::size_t i = 1; i <= L; ++i) {
    total += (static_cast<double>(i) / static_cast<double>(L)) *
             std::pow(f, static_cast<double>(i)) *
             std::pow(1.0 - f, static_cast<double>(L - i));
  }
  return total;
}

double initiator_identification_probability(std::size_t N, double f,
                                            std::size_t L) {
  check_f(f);
  if (N == 0 || L == 0) {
    throw std::invalid_argument("need N >= 1 and L >= 1");
  }
  const double s = first_relay_compromised_weight(f, L);
  const double honest_pool = static_cast<double>(N) * (1.0 - f);
  return s + (1.0 / honest_pool) * (1.0 - 1.0 / static_cast<double>(L)) * s;
}

double first_relay_compromised_monte_carlo(double f, std::size_t L,
                                           std::size_t trials, Rng& rng) {
  check_f(f);
  (void)L;
  std::size_t hits = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    if (rng.bernoulli(f)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

double multipath_first_relay_exposure(double f, std::size_t k) {
  check_f(f);
  return 1.0 - std::pow(1.0 - f, static_cast<double>(k));
}

}  // namespace p2panon::analysis
