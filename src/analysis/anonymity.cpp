#include "analysis/anonymity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace p2panon::analysis {

namespace {
/// Sweep grids legitimately hit both endpoints (f = 0: no attackers,
/// f = 1: everyone compromised), so the full closed interval is valid;
/// only genuinely meaningless fractions are rejected.
void check_f(double f) {
  if (!(f >= 0.0 && f <= 1.0)) {
    throw std::invalid_argument("fraction of attackers must be in [0, 1]");
  }
}

double clamp01(double p) { return std::clamp(p, 0.0, 1.0); }
}  // namespace

double first_relay_compromised_weight(double f, std::size_t L) {
  check_f(f);
  if (L == 0) return 0.0;  // no relays, no first relay to compromise
  double total = 0.0;
  for (std::size_t i = 1; i <= L; ++i) {
    total += (static_cast<double>(i) / static_cast<double>(L)) *
             std::pow(f, static_cast<double>(i)) *
             std::pow(1.0 - f, static_cast<double>(L - i));
  }
  return clamp01(total);
}

double initiator_identification_probability(std::size_t N, double f,
                                            std::size_t L) {
  check_f(f);
  if (N == 0 || L == 0) return 0.0;  // no network / no path: nothing to guess
  if (f >= 1.0) return 1.0;          // every relay is the attacker's
  const double s = first_relay_compromised_weight(f, L);
  // The Case-2 pool is at least the initiator itself; without the floor,
  // N(1-f) < 1 (e.g. N=2, f=0.9) would push the probability above 1.
  const double honest_pool =
      std::max(1.0, static_cast<double>(N) * (1.0 - f));
  return clamp01(s +
                 (1.0 / honest_pool) * (1.0 - 1.0 / static_cast<double>(L)) * s);
}

double first_relay_compromised_monte_carlo(double f, std::size_t L,
                                           std::size_t trials, Rng& rng) {
  check_f(f);
  (void)L;
  if (trials == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    if (rng.bernoulli(f)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

double multipath_first_relay_exposure(double f, std::size_t k) {
  check_f(f);
  if (k == 0) return 0.0;  // no paths, no first relays exposed
  return clamp01(1.0 - std::pow(1.0 - f, static_cast<double>(k)));
}

std::size_t honest_anonymity_set(std::size_t N, double f) {
  check_f(f);
  if (N == 0 || f >= 1.0) return 0;
  const double honest = static_cast<double>(N) * (1.0 - f);
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(honest + 0.5));
}

double uniform_entropy_bits(std::size_t set_size) {
  if (set_size <= 1) return 0.0;
  return std::log2(static_cast<double>(set_size));
}

}  // namespace p2panon::analysis
