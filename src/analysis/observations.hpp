// The paper's three observations about P(k) (§4.7) and tooling to pick
// (k, r) for a target resilience.
//
//   Obs. 1: p*r > 4/3        -> P(k) strictly increases in k; split as
//                               widely as possible.
//   Obs. 2: 1 < p*r <= 4/3   -> P(k) dips then rises: splitting helps only
//                               beyond some k0.
//   Obs. 3: p*r <= 1         -> P(k) strictly decreases; never split
//                               beyond r paths.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace p2panon::analysis {

enum class ObservationRegime { kAlwaysSplit, kSplitIfLarge, kNeverSplit };

const char* to_string(ObservationRegime regime);

/// Classifies by the p*r product per the paper's thresholds.
ObservationRegime classify_regime(double p, double r);

/// Empirically checks the regime over k in {r, 2r, ..., k_max} using the
/// closed form; returns the observed regime (used to validate the paper's
/// thresholds in tests and bench/fig2).
ObservationRegime observe_regime(double p, std::size_t r, std::size_t k_max);

/// For Obs. 2: the smallest k (multiple of r, k > r) from which P is
/// nondecreasing through k_max; returns 0 when P never dips.
std::size_t crossover_k(double p, std::size_t r, std::size_t k_max);

/// Parameter advisor: smallest (k, r) pair (minimizing bandwidth r, then
/// k) whose P(k) meets `target` given availability and path length.
struct ParameterChoice {
  std::size_t k = 0;
  std::size_t r = 0;
  double success = 0.0;
  double bandwidth_factor = 0.0;  // r (payload overhead vs single copy)
};

std::vector<ParameterChoice> advise_parameters(double node_availability,
                                               std::size_t path_length,
                                               double target_success,
                                               std::size_t max_r = 8,
                                               std::size_t max_k = 32);

/// Best-effort fallback when no (k, r) within budget reaches the target:
/// the single choice maximizing P(k) (ties broken toward cheaper r, then
/// smaller k). Never empty for max_r, max_k >= 1.
ParameterChoice best_effort_parameters(double node_availability,
                                       std::size_t path_length,
                                       std::size_t max_r = 8,
                                       std::size_t max_k = 32);

}  // namespace p2panon::analysis
