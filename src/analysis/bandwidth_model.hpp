// Analytic bandwidth-cost model (paper §6.1 metric 2, Figure 4).
//
// A message of |M| bytes sent as SimEra(k, r) over paths of L relays costs,
// when every path delivers,
//
//   cost = k * (|M| * r / k) * (L + 1) = |M| * r * (L + 1)
//
// payload bytes (each of the k paths carries |M| r / k bytes across L
// relay hops plus the hop to the responder). The *expected* cost under the
// Bernoulli path model accounts for paths that die partway: a failed path
// is assumed to carry its segments half the hops on average.
#pragma once

#include <cstddef>

namespace p2panon::analysis {

struct BandwidthModel {
  std::size_t message_size = 1024;  // |M| bytes
  std::size_t path_length = 3;      // L
  std::size_t per_message_overhead = 0;  // headers/crypto per hop-message

  /// Bytes per path when all k paths are used: |M| * r / k + overhead.
  double per_path_payload(std::size_t k, double r) const;

  /// Total cost when all k paths deliver (the Figure 4 curve).
  double full_delivery_cost(std::size_t k, double r) const;

  /// Expected cost when each path independently survives with prob p and a
  /// dead path carries its data `partial_fraction` of the hops.
  double expected_cost(std::size_t k, double r, double p,
                       double partial_fraction = 0.5) const;
};

}  // namespace p2panon::analysis
