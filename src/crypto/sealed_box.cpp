#include "crypto/sealed_box.hpp"

#include <cstring>

#include "crypto/aead.hpp"
#include "crypto/hmac.hpp"

namespace p2panon::crypto {

namespace {

constexpr char kInfo[] = "p2panon-sealed-box-v1";

ChaChaKey derive_key(const X25519Key& shared, const X25519Key& eph_pub,
                     const X25519Key& recipient_pub) {
  Bytes salt;
  salt.reserve(2 * kX25519KeySize);
  append(salt, ByteView(eph_pub.data(), eph_pub.size()));
  append(salt, ByteView(recipient_pub.data(), recipient_pub.size()));
  const Bytes okm =
      hkdf(salt, ByteView(shared.data(), shared.size()),
           bytes_of(kInfo), kChaChaKeySize);
  ChaChaKey key;
  std::memcpy(key.data(), okm.data(), key.size());
  return key;
}

}  // namespace

Bytes sealed_box_seal(const X25519Key& recipient_public, ByteView plaintext,
                      Rng& rng) {
  KeyPair eph = KeyPair::generate(rng);
  const X25519Key shared = x25519(eph.private_key, recipient_public);
  const ChaChaKey key = derive_key(shared, eph.public_key, recipient_public);

  // Key is unique per box (fresh ephemeral), so a fixed nonce is safe.
  const ChaChaNonce nonce{};
  Bytes out;
  out.reserve(kX25519KeySize + plaintext.size() + kAeadTagSize);
  append(out, ByteView(eph.public_key.data(), eph.public_key.size()));
  const Bytes sealed = aead_seal(key, nonce,
                                 ByteView(eph.public_key.data(),
                                          eph.public_key.size()),
                                 plaintext);
  append(out, sealed);
  return out;
}

std::optional<Bytes> sealed_box_open(const KeyPair& recipient,
                                     ByteView sealed) {
  if (sealed.size() < kSealedBoxOverhead) return std::nullopt;
  X25519Key eph_pub;
  std::memcpy(eph_pub.data(), sealed.data(), eph_pub.size());
  const X25519Key shared = x25519(recipient.private_key, eph_pub);
  const ChaChaKey key = derive_key(shared, eph_pub, recipient.public_key);
  const ChaChaNonce nonce{};
  return aead_open(key, nonce,
                   ByteView(eph_pub.data(), eph_pub.size()),
                   sealed.subspan(kX25519KeySize));
}

}  // namespace p2panon::crypto
