// Key material and the in-sim PKI.
//
// The paper "relies on a PKI and assumes each node learns other nodes'
// public keys through some mechanism". KeyDirectory is that mechanism:
// a map from NodeId to the node's X25519 public key, populated when nodes
// are created. Relay-layer session keys (the paper's R_i) are symmetric
// ChaCha20 keys.
#pragma once

#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/x25519.hpp"

namespace p2panon::crypto {

struct KeyPair {
  X25519Key private_key;
  X25519Key public_key;

  /// Generates a keypair from the given RNG (deterministic in simulation).
  static KeyPair generate(Rng& rng);
};

/// Generates a random symmetric key (the paper's per-hop R_i).
ChaChaKey random_symmetric_key(Rng& rng);

/// Node-indexed public key directory: the PKI every anonymity protocol in
/// the paper assumes. Private keys live with the node; the directory only
/// exposes public halves.
class KeyDirectory {
 public:
  KeyDirectory() = default;

  /// Creates keypairs for nodes [0, n) and returns the private halves,
  /// indexed by node.
  std::vector<KeyPair> provision(std::size_t num_nodes, Rng& rng);

  void register_key(NodeId node, const X25519Key& public_key);
  const X25519Key& public_key(NodeId node) const;
  bool has_key(NodeId node) const;
  std::size_t size() const { return keys_.size(); }

  /// Heap footprint of the directory for the capacity byte census.
  std::uint64_t memory_bytes() const {
    return static_cast<std::uint64_t>(keys_.capacity()) * sizeof(X25519Key) +
           present_.capacity() / 8;
  }

 private:
  std::vector<X25519Key> keys_;
  std::vector<bool> present_;
};

}  // namespace p2panon::crypto
