// Keyed per-segment authentication for erasure segments.
//
// Each erasure segment of a message can carry a 16-byte keyed tag plus a
// 16-byte whole-message digest, appended to the serialized PayloadCore
// (anon/onion.cpp). The tag key is derived from the path's responder key
// R_{L+1} — the session key material both ends of the payload channel
// already share — via HKDF, so no extra key exchange is needed:
//
//   K_auth = HKDF(salt = "p2panon-seg-auth", ikm = R_{L+1}, info = "tag")
//   tag    = HMAC-SHA256(K_auth, mid || idx || size || m || n || digest
//                                 || segment)[0..16)
//   digest = SHA-256(whole message M)[0..16)
//
// A relay that flips any byte of the segment, the erasure metadata, the
// digest, or the tag itself invalidates the tag; a flip in R_{L+1} changes
// the derived key, which also invalidates it. The responder therefore
// never admits a tampered segment to Reed-Solomon reconstruction, and the
// whole-message digest lets it validate (or subset-search) a decode even
// when per-segment tags are absent.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/chacha20.hpp"

namespace p2panon::crypto {

constexpr std::size_t kSegmentTagSize = 16;
constexpr std::size_t kMessageDigestSize = 16;

using SegmentTag = std::array<std::uint8_t, kSegmentTagSize>;
using MessageDigest = std::array<std::uint8_t, kMessageDigestSize>;
using SegmentAuthKey = std::array<std::uint8_t, 32>;

/// K_auth from the payload channel's responder key (the paper's R_{L+1}).
SegmentAuthKey derive_segment_auth_key(const ChaChaKey& responder_key);

/// Truncated SHA-256 of the whole message; travels in every segment's
/// trailer so the responder can validate a reconstruction end to end.
MessageDigest message_digest(ByteView message);

/// Tag over the segment bytes and everything the decoder will trust about
/// them (message id, segment index, original size, erasure (m, n), and the
/// whole-message digest).
SegmentTag segment_tag(const SegmentAuthKey& key, std::uint64_t message_id,
                       std::uint32_t segment_index,
                       std::uint32_t original_size,
                       std::uint16_t needed_segments,
                       std::uint16_t total_segments,
                       const MessageDigest& digest, ByteView segment);

/// Constant-time comparison (not strictly needed inside the simulation,
/// but the primitive should not teach a timing side channel).
bool segment_tag_equal(const SegmentTag& a, const SegmentTag& b);

}  // namespace p2panon::crypto
