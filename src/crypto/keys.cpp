#include "crypto/keys.hpp"

#include <stdexcept>

namespace p2panon::crypto {

KeyPair KeyPair::generate(Rng& rng) {
  KeyPair kp;
  rng.fill(kp.private_key.data(), kp.private_key.size());
  kp.public_key = x25519_base(kp.private_key);
  return kp;
}

ChaChaKey random_symmetric_key(Rng& rng) {
  ChaChaKey key;
  rng.fill(key.data(), key.size());
  return key;
}

std::vector<KeyPair> KeyDirectory::provision(std::size_t num_nodes,
                                             Rng& rng) {
  std::vector<KeyPair> pairs;
  pairs.reserve(num_nodes);
  for (std::size_t node = 0; node < num_nodes; ++node) {
    KeyPair kp = KeyPair::generate(rng);
    register_key(static_cast<NodeId>(node), kp.public_key);
    pairs.push_back(kp);
  }
  return pairs;
}

void KeyDirectory::register_key(NodeId node, const X25519Key& public_key) {
  if (node >= keys_.size()) {
    keys_.resize(node + 1);
    present_.resize(node + 1, false);
  }
  keys_[node] = public_key;
  present_[node] = true;
}

const X25519Key& KeyDirectory::public_key(NodeId node) const {
  if (!has_key(node)) {
    throw std::out_of_range("KeyDirectory: no key for node");
  }
  return keys_[node];
}

bool KeyDirectory::has_key(NodeId node) const {
  return node < keys_.size() && present_[node];
}

}  // namespace p2panon::crypto
