#include "crypto/hmac.hpp"

#include <stdexcept>

namespace p2panon::crypto {

Sha256Digest hmac_sha256(ByteView key, ByteView message) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > 64) {
    const Sha256Digest hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }

  std::array<std::uint8_t, 64> ipad;
  std::array<std::uint8_t, 64> opad;
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const Sha256Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

Sha256Digest hkdf_extract(ByteView salt, ByteView ikm) {
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length) {
  if (length > 255 * kSha256DigestSize) {
    throw std::invalid_argument("hkdf_expand: length too large");
  }
  Bytes okm;
  okm.reserve(length);
  Sha256Digest t{};
  std::size_t t_len = 0;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    Bytes input;
    input.reserve(t_len + info.size() + 1);
    input.insert(input.end(), t.begin(), t.begin() + static_cast<long>(t_len));
    append(input, info);
    input.push_back(counter++);
    t = hmac_sha256(prk, input);
    t_len = kSha256DigestSize;
    const std::size_t take = std::min(length - okm.size(), t_len);
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<long>(take));
  }
  return okm;
}

Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length) {
  const Sha256Digest prk = hkdf_extract(salt, ikm);
  return hkdf_expand(prk, info, length);
}

}  // namespace p2panon::crypto
