// Poly1305 one-time authenticator (RFC 8439).
//
// Implemented with a small fixed-width big integer over 64-bit limbs and
// explicit reduction mod 2^130 - 5; clarity over speed (the simulator's
// hot path is not MAC computation). Verified against the RFC 8439 vector.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace p2panon::crypto {

constexpr std::size_t kPolyKeySize = 32;
constexpr std::size_t kPolyTagSize = 16;

using PolyKey = std::array<std::uint8_t, kPolyKeySize>;
using PolyTag = std::array<std::uint8_t, kPolyTagSize>;

PolyTag poly1305(const PolyKey& key, ByteView message);

/// Constant-time tag comparison.
bool poly1305_verify(const PolyTag& expected, const PolyKey& key,
                     ByteView message);

}  // namespace p2panon::crypto
