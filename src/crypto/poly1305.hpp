// Poly1305 one-time authenticator (RFC 8439).
//
// Implemented with a small fixed-width big integer over 64-bit limbs and
// explicit reduction mod 2^130 - 5. Verified against the RFC 8439 vector.
//
// The incremental `Poly1305` class lets the AEAD authenticate
// aad || pad || ciphertext || pad || lengths without ever materializing
// that padded stream in a buffer (the allocation the old `mac_input`
// helper made on every seal/open); the one-shot `poly1305` is a thin
// wrapper over it.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace p2panon::crypto {

constexpr std::size_t kPolyKeySize = 32;
constexpr std::size_t kPolyTagSize = 16;

using PolyKey = std::array<std::uint8_t, kPolyKeySize>;
using PolyTag = std::array<std::uint8_t, kPolyTagSize>;

/// Incremental Poly1305. Feed the message in arbitrary-size chunks with
/// update(); pad16() zero-fills to the next 16-byte boundary (the AEAD's
/// inter-section padding); finish() consumes the object and returns the
/// tag. Equivalent to the one-shot form over the concatenated stream.
class Poly1305 {
 public:
  explicit Poly1305(const PolyKey& key);

  void update(ByteView data);

  /// Zero-pads the absorbed stream to a 16-byte boundary (no-op when
  /// already aligned). Matches RFC 8439 §2.8 padding1/padding2.
  void pad16();

  PolyTag finish();

 private:
  /// Absorbs one block: h = (h + block + hibit·2^128) · r mod 2^130-5.
  void process_block(const std::uint8_t block[16], std::uint64_t hibit);

  std::uint64_t r0_, r1_;  // clamped key half
  std::uint64_t s0_, s1_;  // final addend
  std::uint64_t h_[3];     // accumulator, little-endian 64-bit limbs
  std::uint8_t buf_[16];   // pending partial block
  std::size_t buf_len_ = 0;
};

PolyTag poly1305(const PolyKey& key, ByteView message);

/// Constant-time tag comparison.
bool poly1305_verify(const PolyTag& expected, const PolyKey& key,
                     ByteView message);

}  // namespace p2panon::crypto
