// Sealed boxes: anonymous public-key encryption.
//
// Each onion layer of a path-construction message is "encrypted with the
// relay's public key" in the paper. We realize that with an ephemeral
// X25519 handshake (libsodium's crypto_box_seal pattern):
//
//   seal(pk, m) = eph_pub || AEAD(HKDF(DH(eph_priv, pk), eph_pub || pk), m)
//
// The sender learns nothing it can replay (fresh ephemeral per box), and
// the box reveals nothing about the recipient beyond what pk-ownership
// implies — matching onion routing's requirements.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/keys.hpp"

namespace p2panon::crypto {

/// eph_pub(32) || ciphertext || tag(16) overhead per box.
constexpr std::size_t kSealedBoxOverhead = kX25519KeySize + 16;

/// Seals plaintext to `recipient_public`. `rng` supplies the ephemeral key.
Bytes sealed_box_seal(const X25519Key& recipient_public, ByteView plaintext,
                      Rng& rng);

/// Opens a sealed box with the recipient's keypair; nullopt on failure
/// (wrong key, truncation, tampering).
std::optional<Bytes> sealed_box_open(const KeyPair& recipient,
                                     ByteView sealed);

}  // namespace p2panon::crypto
