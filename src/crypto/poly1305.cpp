#include "crypto/poly1305.hpp"

#include <cstring>

namespace p2panon::crypto {

namespace {

// 130-bit accumulator as three 64-bit limbs (base 2^64); values stay below
// 2^131 between reductions. The message-block polynomial evaluation is
// h = (h + block) * r mod (2^130 - 5).

struct U192 {
  std::uint64_t limb[3];  // little-endian limbs
};

inline U192 add(const U192& a, const U192& b) {
  U192 out;
  unsigned __int128 carry = 0;
  for (int i = 0; i < 3; ++i) {
    carry += static_cast<unsigned __int128>(a.limb[i]) + b.limb[i];
    out.limb[i] = static_cast<std::uint64_t>(carry);
    carry >>= 64;
  }
  return out;
}

// Multiplies a (< 2^131) by r (< 2^125, two limbs), reduces mod 2^130 - 5.
inline U192 mul_mod(const U192& a, std::uint64_t r0, std::uint64_t r1) {
  // Schoolbook product: 3 x 2 limbs -> 5 limbs.
  std::uint64_t p[5] = {0, 0, 0, 0, 0};
  const std::uint64_t ra[2] = {r0, r1};
  for (int i = 0; i < 3; ++i) {
    unsigned __int128 carry = 0;
    for (int j = 0; j < 2; ++j) {
      carry += static_cast<unsigned __int128>(a.limb[i]) * ra[j] + p[i + j];
      p[i + j] = static_cast<std::uint64_t>(carry);
      carry >>= 64;
    }
    int k = i + 2;
    while (carry != 0) {
      carry += p[k];
      p[k] = static_cast<std::uint64_t>(carry);
      carry >>= 64;
      ++k;
    }
  }

  // Reduce mod 2^130 - 5: split at bit 130, fold hi back as 5 * hi.
  // lo = p mod 2^130 (limbs 0,1 and low 2 bits of limb 2);
  // hi = p >> 130 (up to ~2^126 after first fold).
  auto fold = [](std::uint64_t q[5]) {
    const std::uint64_t lo0 = q[0];
    const std::uint64_t lo1 = q[1];
    const std::uint64_t lo2 = q[2] & 0x3;  // bits 128..129
    // hi = q >> 130
    std::uint64_t hi0 = (q[2] >> 2) | (q[3] << 62);
    std::uint64_t hi1 = (q[3] >> 2) | (q[4] << 62);
    std::uint64_t hi2 = q[4] >> 2;
    // result = lo + 5 * hi
    unsigned __int128 c = 0;
    c = static_cast<unsigned __int128>(hi0) * 5 + lo0;
    q[0] = static_cast<std::uint64_t>(c);
    c >>= 64;
    c += static_cast<unsigned __int128>(hi1) * 5 + lo1;
    q[1] = static_cast<std::uint64_t>(c);
    c >>= 64;
    c += static_cast<unsigned __int128>(hi2) * 5 + lo2;
    q[2] = static_cast<std::uint64_t>(c);
    c >>= 64;
    q[3] = static_cast<std::uint64_t>(c);
    q[4] = 0;
  };
  fold(p);
  fold(p);  // after two folds the value fits comfortably in 131 bits

  U192 out{{p[0], p[1], p[2]}};
  return out;
}

// Final reduction to canonical form mod 2^130 - 5.
inline void freeze(U192& h) {
  // h < 2^131. Subtract the modulus up to twice if needed.
  for (int pass = 0; pass < 2; ++pass) {
    // g = h - (2^130 - 5) = h + 5 - 2^130
    std::uint64_t g[3];
    unsigned __int128 c = static_cast<unsigned __int128>(h.limb[0]) + 5;
    g[0] = static_cast<std::uint64_t>(c);
    c >>= 64;
    c += h.limb[1];
    g[1] = static_cast<std::uint64_t>(c);
    c >>= 64;
    c += h.limb[2];
    g[2] = static_cast<std::uint64_t>(c);
    // h >= modulus iff (h + 5) has bit 130 set
    if (g[2] >> 2) {
      h.limb[0] = g[0];
      h.limb[1] = g[1];
      h.limb[2] = g[2] & 0x3;
    }
  }
}

}  // namespace

Poly1305::Poly1305(const PolyKey& key) {
  // r with RFC clamping; s is the final addend.
  r0_ = load_u64le(key.data()) & 0x0ffffffc0fffffffULL;
  r1_ = load_u64le(key.data() + 8) & 0x0ffffffc0ffffffcULL;
  s0_ = load_u64le(key.data() + 16);
  s1_ = load_u64le(key.data() + 24);
  h_[0] = h_[1] = h_[2] = 0;
}

void Poly1305::process_block(const std::uint8_t block[16],
                             std::uint64_t hibit) {
  U192 h{{h_[0], h_[1], h_[2]}};
  const U192 n{{load_u64le(block), load_u64le(block + 8), hibit}};
  h = mul_mod(add(h, n), r0_, r1_);
  h_[0] = h.limb[0];
  h_[1] = h.limb[1];
  h_[2] = h.limb[2];
}

void Poly1305::update(ByteView data) {
  if (data.empty()) return;
  std::size_t offset = 0;
  if (buf_len_ != 0) {
    const std::size_t take =
        std::min<std::size_t>(16 - buf_len_, data.size());
    std::memcpy(buf_ + buf_len_, data.data(), take);
    buf_len_ += take;
    offset = take;
    if (buf_len_ < 16) return;
    process_block(buf_, 1);
    buf_len_ = 0;
  }
  while (data.size() - offset >= 16) {
    process_block(data.data() + offset, 1);
    offset += 16;
  }
  if (offset < data.size()) {
    std::memcpy(buf_, data.data() + offset, data.size() - offset);
    buf_len_ = data.size() - offset;
  }
}

void Poly1305::pad16() {
  if (buf_len_ == 0) return;
  std::memset(buf_ + buf_len_, 0, 16 - buf_len_);
  process_block(buf_, 1);
  buf_len_ = 0;
}

PolyTag Poly1305::finish() {
  if (buf_len_ != 0) {
    // Trailing partial block: the 2^(8*len) bit lands inside the 16 bytes.
    std::uint8_t block[16] = {0};
    std::memcpy(block, buf_, buf_len_);
    block[buf_len_] = 1;
    process_block(block, 0);
    buf_len_ = 0;
  }

  U192 h{{h_[0], h_[1], h_[2]}};
  freeze(h);

  // tag = (h + s) mod 2^128
  unsigned __int128 c = static_cast<unsigned __int128>(h.limb[0]) + s0_;
  const std::uint64_t t0 = static_cast<std::uint64_t>(c);
  c >>= 64;
  c += static_cast<unsigned __int128>(h.limb[1]) + s1_;
  const std::uint64_t t1 = static_cast<std::uint64_t>(c);

  PolyTag tag;
  store_u64le(tag.data(), t0);
  store_u64le(tag.data() + 8, t1);
  return tag;
}

PolyTag poly1305(const PolyKey& key, ByteView message) {
  Poly1305 mac(key);
  mac.update(message);
  return mac.finish();
}

bool poly1305_verify(const PolyTag& expected, const PolyKey& key,
                     ByteView message) {
  const PolyTag actual = poly1305(key, message);
  return constant_time_equal(ByteView(expected.data(), expected.size()),
                             ByteView(actual.data(), actual.size()));
}

}  // namespace p2panon::crypto
