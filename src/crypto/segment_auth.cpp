#include "crypto/segment_auth.hpp"

#include <cstring>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace p2panon::crypto {

namespace {

constexpr char kSalt[] = "p2panon-seg-auth";
constexpr char kInfo[] = "tag";

void put_u64be(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
  }
}

}  // namespace

SegmentAuthKey derive_segment_auth_key(const ChaChaKey& responder_key) {
  const Bytes okm =
      hkdf(ByteView(reinterpret_cast<const std::uint8_t*>(kSalt),
                    sizeof(kSalt) - 1),
           ByteView(responder_key.data(), responder_key.size()),
           ByteView(reinterpret_cast<const std::uint8_t*>(kInfo),
                    sizeof(kInfo) - 1),
           32);
  SegmentAuthKey key;
  std::memcpy(key.data(), okm.data(), key.size());
  return key;
}

MessageDigest message_digest(ByteView message) {
  const Sha256Digest full = Sha256::hash(message);
  MessageDigest digest;
  std::memcpy(digest.data(), full.data(), digest.size());
  return digest;
}

SegmentTag segment_tag(const SegmentAuthKey& key, std::uint64_t message_id,
                       std::uint32_t segment_index,
                       std::uint32_t original_size,
                       std::uint16_t needed_segments,
                       std::uint16_t total_segments,
                       const MessageDigest& digest, ByteView segment) {
  // Fixed-width header so no field boundary is ambiguous, then the digest
  // and the segment bytes.
  std::uint8_t header[8 + 4 + 4 + 2 + 2];
  put_u64be(header, message_id);
  header[8] = static_cast<std::uint8_t>(segment_index >> 24);
  header[9] = static_cast<std::uint8_t>(segment_index >> 16);
  header[10] = static_cast<std::uint8_t>(segment_index >> 8);
  header[11] = static_cast<std::uint8_t>(segment_index);
  header[12] = static_cast<std::uint8_t>(original_size >> 24);
  header[13] = static_cast<std::uint8_t>(original_size >> 16);
  header[14] = static_cast<std::uint8_t>(original_size >> 8);
  header[15] = static_cast<std::uint8_t>(original_size);
  header[16] = static_cast<std::uint8_t>(needed_segments >> 8);
  header[17] = static_cast<std::uint8_t>(needed_segments);
  header[18] = static_cast<std::uint8_t>(total_segments >> 8);
  header[19] = static_cast<std::uint8_t>(total_segments);

  Bytes msg;
  msg.reserve(sizeof(header) + digest.size() + segment.size());
  msg.insert(msg.end(), header, header + sizeof(header));
  msg.insert(msg.end(), digest.begin(), digest.end());
  msg.insert(msg.end(), segment.begin(), segment.end());

  const Sha256Digest mac =
      hmac_sha256(ByteView(key.data(), key.size()), msg);
  SegmentTag tag;
  std::memcpy(tag.data(), mac.data(), tag.size());
  return tag;
}

bool segment_tag_equal(const SegmentTag& a, const SegmentTag& b) {
  // Secret-derived MACs must never be compared with early-exit equality:
  // route through the shared constant-time helper like poly1305_verify.
  return constant_time_equal(ByteView(a.data(), a.size()),
                             ByteView(b.data(), b.size()));
}

}  // namespace p2panon::crypto
