// ChaCha20 stream cipher (RFC 8439).
//
// Used as the symmetric cipher for onion payload layers (the paper's
// R_i-keyed layers) and inside the AEAD. Verified against the RFC 8439
// block-function and encryption vectors.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace p2panon::crypto {

constexpr std::size_t kChaChaKeySize = 32;
constexpr std::size_t kChaChaNonceSize = 12;

using ChaChaKey = std::array<std::uint8_t, kChaChaKeySize>;
using ChaChaNonce = std::array<std::uint8_t, kChaChaNonceSize>;

/// Computes one 64-byte keystream block (the RFC "block function").
std::array<std::uint8_t, 64> chacha20_block(const ChaChaKey& key,
                                            const ChaChaNonce& nonce,
                                            std::uint32_t counter);

/// XORs `data` with the keystream starting at block `initial_counter`.
/// Encryption and decryption are the same operation.
void chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t initial_counter, MutableByteView data);

/// Out-of-place convenience.
Bytes chacha20_encrypt(const ChaChaKey& key, const ChaChaNonce& nonce,
                       std::uint32_t initial_counter, ByteView data);

}  // namespace p2panon::crypto
