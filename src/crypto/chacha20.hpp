// ChaCha20 stream cipher (RFC 8439).
//
// Used as the symmetric cipher for onion payload layers (the paper's
// R_i-keyed layers) and inside the AEAD. Verified against the RFC 8439
// block-function and encryption vectors.
//
// The keystream application is the relay data plane's hottest loop, so it
// runs through batched kernels behind the same runtime-dispatch pattern as
// the GF(256) row kernels (`src/erasure/gf256`): a 4-way interleaved scalar
// kernel plus SSSE3 (4 blocks/step) and AVX2 (8 blocks/step) variants, all
// byte-identical to the single-block reference, selected once per process
// with `__builtin_cpu_supports`. `crypto_detail` exposes every variant so
// golden-vector tests can pin them against the reference and benchmarks can
// report a per-kernel throughput series.
//
// The block counter is the RFC's 32-bit word 13 of the state. Internally it
// is carried in 64 bits, and any call whose keystream would run past the
// 32-bit block space under one (key, nonce) throws std::length_error
// instead of silently wrapping back to block 0 (which would reuse
// keystream).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace p2panon::crypto {

constexpr std::size_t kChaChaKeySize = 32;
constexpr std::size_t kChaChaNonceSize = 12;

using ChaChaKey = std::array<std::uint8_t, kChaChaKeySize>;
using ChaChaNonce = std::array<std::uint8_t, kChaChaNonceSize>;

/// Computes one 64-byte keystream block (the RFC "block function").
std::array<std::uint8_t, 64> chacha20_block(const ChaChaKey& key,
                                            const ChaChaNonce& nonce,
                                            std::uint32_t counter);

/// XORs `data` with the keystream starting at block `initial_counter`.
/// Encryption and decryption are the same operation. Throws
/// std::length_error when the data spans more 64-byte blocks than remain in
/// the 32-bit counter space above `initial_counter` (the keystream would
/// repeat).
void chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t initial_counter, MutableByteView data);

/// Out-of-place form: dst[i] = src[i] ^ keystream[i]. `src` and `dst` must
/// have equal sizes and either not overlap or be the exact same range.
/// Same counter-overflow contract as the in-place form.
void chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t initial_counter, ByteView src,
                  MutableByteView dst);

/// Out-of-place convenience (allocates the result).
Bytes chacha20_encrypt(const ChaChaKey& key, const ChaChaNonce& nonce,
                       std::uint32_t initial_counter, ByteView data);

/// Kernel chacha20_xor dispatched to: "avx2", "ssse3" or "wide4".
const char* chacha20_kernel_name();

namespace crypto_detail {

/// Individual keystream-XOR kernel variants, exposed so golden-vector tests
/// can pin every implementation byte-identical to the reference and
/// benchmarks can report a per-kernel throughput series. `kRef` is the
/// original one-block-at-a-time scalar loop (the scalar baseline); `kWide4`
/// interleaves four blocks for ILP; the SIMD variants compute 4 (SSSE3) or
/// 8 (AVX2) blocks per step.
enum class Kernel { kRef, kWide4, kSsse3, kAvx2 };

inline constexpr std::array<Kernel, 4> kAllKernels = {
    Kernel::kRef, Kernel::kWide4, Kernel::kSsse3, Kernel::kAvx2};

/// False when the host CPU cannot run the variant.
bool kernel_available(Kernel k);

const char* kernel_label(Kernel k);

/// Forces a specific variant. Requires kernel_available(k). Same size,
/// aliasing and counter-overflow contract as the public chacha20_xor.
void chacha20_xor(Kernel k, const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t initial_counter, ByteView src,
                  MutableByteView dst);

}  // namespace crypto_detail

}  // namespace p2panon::crypto
