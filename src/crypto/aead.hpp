// ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//
// Every onion layer and sealed box in the anonymity protocols is sealed
// with this AEAD, so a relay that tampers with a layer is detected by the
// next hop. Verified against the RFC 8439 §2.8.2 vector.
//
// The `_into` forms are the relay data plane's entry points: they seal and
// open in caller-owned scratch, with the MAC computed incrementally over
// aad || pad || ciphertext || pad || lengths, so a seal or open performs
// zero heap allocations. The allocating forms are wrappers over them.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/poly1305.hpp"

namespace p2panon::crypto {

constexpr std::size_t kAeadTagSize = kPolyTagSize;

/// Seals plaintext; returns ciphertext || 16-byte tag.
Bytes aead_seal(const ChaChaKey& key, const ChaChaNonce& nonce, ByteView aad,
                ByteView plaintext);

/// Opens ciphertext || tag; returns nullopt if authentication fails.
std::optional<Bytes> aead_open(const ChaChaKey& key, const ChaChaNonce& nonce,
                               ByteView aad, ByteView sealed);

/// In-place seal: `buf` holds the plaintext in its first size()-16 bytes
/// with 16 spare bytes after it; on return buf = ciphertext || tag. Output
/// bytes are identical to aead_seal. Throws std::invalid_argument when buf
/// is smaller than the tag. Performs no heap allocations.
void aead_seal_into(const ChaChaKey& key, const ChaChaNonce& nonce,
                    ByteView aad, MutableByteView buf);

/// In-place open: `buf` holds ciphertext || tag. On success returns true
/// with the plaintext in buf.first(size()-16) (the tag bytes are left
/// untouched); on authentication failure returns false with buf unchanged.
/// Performs no heap allocations.
bool aead_open_into(const ChaChaKey& key, const ChaChaNonce& nonce,
                    ByteView aad, MutableByteView buf);

/// Deterministic nonce from a 64-bit sequence number (low 8 bytes LE,
/// top 4 bytes zero). Safe as long as a (key, seq) pair is never reused.
ChaChaNonce nonce_from_seq(std::uint64_t seq);

}  // namespace p2panon::crypto
