// ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//
// Every onion layer and sealed box in the anonymity protocols is sealed
// with this AEAD, so a relay that tampers with a layer is detected by the
// next hop. Verified against the RFC 8439 §2.8.2 vector.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/poly1305.hpp"

namespace p2panon::crypto {

constexpr std::size_t kAeadTagSize = kPolyTagSize;

/// Seals plaintext; returns ciphertext || 16-byte tag.
Bytes aead_seal(const ChaChaKey& key, const ChaChaNonce& nonce, ByteView aad,
                ByteView plaintext);

/// Opens ciphertext || tag; returns nullopt if authentication fails.
std::optional<Bytes> aead_open(const ChaChaKey& key, const ChaChaNonce& nonce,
                               ByteView aad, ByteView sealed);

/// Deterministic nonce from a 64-bit sequence number (low 8 bytes LE,
/// top 4 bytes zero). Safe as long as a (key, seq) pair is never reused.
ChaChaNonce nonce_from_seq(std::uint64_t seq);

}  // namespace p2panon::crypto
