// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// HKDF derives the symmetric keys used by the onion layers and sealed
// boxes. Verified against the RFC 4231 / RFC 5869 vectors.
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace p2panon::crypto {

Sha256Digest hmac_sha256(ByteView key, ByteView message);

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Sha256Digest hkdf_extract(ByteView salt, ByteView ikm);

/// HKDF-Expand to `length` bytes (length <= 255 * 32).
Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length);

/// Extract-then-expand convenience.
Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length);

}  // namespace p2panon::crypto
