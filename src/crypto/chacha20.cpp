#include "crypto/chacha20.hpp"

#include <cstring>
#include <stdexcept>

#if defined(__x86_64__) && defined(__GNUC__)
#define P2PANON_CHACHA_X86 1
#include <immintrin.h>
#else
#define P2PANON_CHACHA_X86 0
#endif

namespace p2panon::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b,
                          std::uint32_t& c, std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

void init_state(std::uint32_t state[16], const ChaChaKey& key,
                const ChaChaNonce& nonce, std::uint32_t counter) {
  state[0] = 0x61707865;  // "expa"
  state[1] = 0x3320646e;  // "nd 3"
  state[2] = 0x79622d32;  // "2-by"
  state[3] = 0x6b206574;  // "te k"
  for (int i = 0; i < 8; ++i) state[4 + i] = load_u32le(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load_u32le(nonce.data() + 4 * i);
}

void block_to_keystream(const std::uint32_t state[16], std::uint8_t out[64]) {
  std::uint32_t working[16];
  std::memcpy(working, state, sizeof(working));
  for (int round = 0; round < 10; ++round) {
    quarter_round(working[0], working[4], working[8], working[12]);
    quarter_round(working[1], working[5], working[9], working[13]);
    quarter_round(working[2], working[6], working[10], working[14]);
    quarter_round(working[3], working[7], working[11], working[15]);
    quarter_round(working[0], working[5], working[10], working[15]);
    quarter_round(working[1], working[6], working[11], working[12]);
    quarter_round(working[2], working[7], working[8], working[13]);
    quarter_round(working[3], working[4], working[9], working[14]);
  }
  for (int i = 0; i < 16; ++i) {
    store_u32le(out + 4 * i, working[i] + state[i]);
  }
}

// --- Keystream-XOR kernel variants ------------------------------------------
//
// Every variant computes dst[i] = src[i] ^ keystream[i] with byte-identical
// results; they only differ in how many 64-byte blocks they produce per
// step. Common contract: `base` is the initialized state with word 12 unset,
// `counter` is the 64-bit running block index, and the caller has already
// validated that `counter + ceil(len/64) <= 2^32`, so every per-block
// counter a kernel materializes fits in 32 bits. Multi-block kernels only
// run full batches and delegate the tail to xor_ref, which also keeps the
// per-lane counters inside the validated space.

void xor_ref(const std::uint32_t base[16], std::uint64_t counter,
             const std::uint8_t* src, std::uint8_t* dst, std::size_t len) {
  // The original scalar loop: one block at a time. Kept as the golden
  // reference, the benchmark baseline, and the tail path of every batched
  // kernel.
  std::uint32_t state[16];
  std::memcpy(state, base, sizeof(state));
  std::uint8_t keystream[64];
  std::size_t offset = 0;
  while (offset < len) {
    state[12] = static_cast<std::uint32_t>(counter++);
    block_to_keystream(state, keystream);
    const std::size_t take = std::min<std::size_t>(64, len - offset);
    for (std::size_t i = 0; i < take; ++i) {
      dst[offset + i] = src[offset + i] ^ keystream[i];
    }
    offset += take;
  }
}

#if defined(__GNUC__) || defined(__clang__)

// Portable 4-lane vector: GNU vector extensions compile to whatever SIMD
// the target has (SSE2 on x86, NEON on arm, plain scalar otherwise), so
// wide4 stays fast on hosts where the hand-written x86 kernels are compiled
// out.
typedef std::uint32_t U32x4 __attribute__((vector_size(16)));

inline U32x4 splat4(std::uint32_t x) { return U32x4{x, x, x, x}; }

inline U32x4 rotl4(U32x4 x, int n) { return (x << n) | (x >> (32 - n)); }

void xor_wide4(const std::uint32_t base[16], std::uint64_t counter,
               const std::uint8_t* src, std::uint8_t* dst, std::size_t len) {
  // Four blocks interleaved, one lane per block: v[w] holds word w of all
  // four blocks, so every quarter-round statement is a single 4-lane vector
  // operation with no cross-lane dependency.
  std::size_t offset = 0;
  while (len - offset >= 256) {
    const std::uint32_t c0 = static_cast<std::uint32_t>(counter);
    U32x4 v[16];
    for (int w = 0; w < 16; ++w) v[w] = splat4(base[w]);
    const U32x4 counters = U32x4{c0, c0 + 1, c0 + 2, c0 + 3};
    v[12] = counters;
    auto qr = [&v](int a, int b, int c, int d) {
      v[a] += v[b]; v[d] = rotl4(v[d] ^ v[a], 16);
      v[c] += v[d]; v[b] = rotl4(v[b] ^ v[c], 12);
      v[a] += v[b]; v[d] = rotl4(v[d] ^ v[a], 8);
      v[c] += v[d]; v[b] = rotl4(v[b] ^ v[c], 7);
    };
    for (int round = 0; round < 10; ++round) {
      qr(0, 4, 8, 12);
      qr(1, 5, 9, 13);
      qr(2, 6, 10, 14);
      qr(3, 7, 11, 15);
      qr(0, 5, 10, 15);
      qr(1, 6, 11, 12);
      qr(2, 7, 8, 13);
      qr(3, 4, 9, 14);
    }
    for (int w = 0; w < 16; ++w) {
      v[w] += (w == 12) ? counters : splat4(base[w]);
    }
    for (int l = 0; l < 4; ++l) {
      const std::uint8_t* s = src + offset + static_cast<std::size_t>(l) * 64;
      std::uint8_t* d = dst + offset + static_cast<std::size_t>(l) * 64;
      for (int w = 0; w < 16; ++w) {
        store_u32le(d + 4 * w, load_u32le(s + 4 * w) ^ v[w][l]);
      }
    }
    counter += 4;
    offset += 256;
  }
  if (offset < len) xor_ref(base, counter, src + offset, dst + offset, len - offset);
}

#else  // no GNU vector extensions

void xor_wide4(const std::uint32_t base[16], std::uint64_t counter,
               const std::uint8_t* src, std::uint8_t* dst, std::size_t len) {
  // Four blocks interleaved in scalar arrays; correct everywhere, relies on
  // the compiler to keep the four independent chains in flight.
  std::size_t offset = 0;
  while (len - offset >= 256) {
    std::uint32_t v[16][4];
    for (int w = 0; w < 16; ++w) {
      for (int l = 0; l < 4; ++l) v[w][l] = base[w];
    }
    for (int l = 0; l < 4; ++l) {
      v[12][l] = static_cast<std::uint32_t>(counter) + static_cast<std::uint32_t>(l);
    }
    auto qr = [&v](int a, int b, int c, int d) {
      for (int l = 0; l < 4; ++l) v[a][l] += v[b][l];
      for (int l = 0; l < 4; ++l) v[d][l] = rotl(v[d][l] ^ v[a][l], 16);
      for (int l = 0; l < 4; ++l) v[c][l] += v[d][l];
      for (int l = 0; l < 4; ++l) v[b][l] = rotl(v[b][l] ^ v[c][l], 12);
      for (int l = 0; l < 4; ++l) v[a][l] += v[b][l];
      for (int l = 0; l < 4; ++l) v[d][l] = rotl(v[d][l] ^ v[a][l], 8);
      for (int l = 0; l < 4; ++l) v[c][l] += v[d][l];
      for (int l = 0; l < 4; ++l) v[b][l] = rotl(v[b][l] ^ v[c][l], 7);
    };
    for (int round = 0; round < 10; ++round) {
      qr(0, 4, 8, 12);
      qr(1, 5, 9, 13);
      qr(2, 6, 10, 14);
      qr(3, 7, 11, 15);
      qr(0, 5, 10, 15);
      qr(1, 6, 11, 12);
      qr(2, 7, 8, 13);
      qr(3, 4, 9, 14);
    }
    for (int l = 0; l < 4; ++l) {
      const std::uint8_t* s = src + offset + static_cast<std::size_t>(l) * 64;
      std::uint8_t* d = dst + offset + static_cast<std::size_t>(l) * 64;
      for (int w = 0; w < 16; ++w) {
        const std::uint32_t input =
            (w == 12) ? static_cast<std::uint32_t>(counter) +
                            static_cast<std::uint32_t>(l)
                      : base[w];
        store_u32le(d + 4 * w, load_u32le(s + 4 * w) ^ (v[w][l] + input));
      }
    }
    counter += 4;
    offset += 256;
  }
  if (offset < len) xor_ref(base, counter, src + offset, dst + offset, len - offset);
}

#endif  // GNU vector extensions

#if P2PANON_CHACHA_X86

// pshufb-based 16/8-bit rotates (byte permutations); 12/7 go through
// shift+or. Masks follow the standard ChaCha SSSE3 layout: within each
// 4-byte lane, rotate-left-16 swaps byte pairs and rotate-left-8 moves the
// top byte to the bottom.
#define P2PANON_CHACHA_QR128(a, b, c, d, rot16, rot8)                \
  do {                                                               \
    (a) = _mm_add_epi32((a), (b));                                   \
    (d) = _mm_shuffle_epi8(_mm_xor_si128((d), (a)), (rot16));        \
    (c) = _mm_add_epi32((c), (d));                                   \
    (b) = _mm_xor_si128((b), (c));                                   \
    (b) = _mm_or_si128(_mm_slli_epi32((b), 12), _mm_srli_epi32((b), 20)); \
    (a) = _mm_add_epi32((a), (b));                                   \
    (d) = _mm_shuffle_epi8(_mm_xor_si128((d), (a)), (rot8));         \
    (c) = _mm_add_epi32((c), (d));                                   \
    (b) = _mm_xor_si128((b), (c));                                   \
    (b) = _mm_or_si128(_mm_slli_epi32((b), 7), _mm_srli_epi32((b), 25)); \
  } while (0)

__attribute__((target("ssse3"))) void xor_ssse3(const std::uint32_t base[16],
                                                std::uint64_t counter,
                                                const std::uint8_t* src,
                                                std::uint8_t* dst,
                                                std::size_t len) {
  // Four blocks per step, one 128-bit register per state word with lane =
  // block. The per-block results are recovered with a 4x4 32-bit transpose
  // (unpack lo/hi pairs) per group of four state words.
  const __m128i rot16 =
      _mm_set_epi8(13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2);
  const __m128i rot8 =
      _mm_set_epi8(14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3);
  std::size_t offset = 0;
  while (len - offset >= 256) {
    __m128i inp[16];
    for (int w = 0; w < 16; ++w) {
      inp[w] = _mm_set1_epi32(static_cast<int>(base[w]));
    }
    inp[12] = _mm_add_epi32(
        _mm_set1_epi32(static_cast<int>(static_cast<std::uint32_t>(counter))),
        _mm_set_epi32(3, 2, 1, 0));
    __m128i v[16];
    for (int w = 0; w < 16; ++w) v[w] = inp[w];
    for (int round = 0; round < 10; ++round) {
      P2PANON_CHACHA_QR128(v[0], v[4], v[8], v[12], rot16, rot8);
      P2PANON_CHACHA_QR128(v[1], v[5], v[9], v[13], rot16, rot8);
      P2PANON_CHACHA_QR128(v[2], v[6], v[10], v[14], rot16, rot8);
      P2PANON_CHACHA_QR128(v[3], v[7], v[11], v[15], rot16, rot8);
      P2PANON_CHACHA_QR128(v[0], v[5], v[10], v[15], rot16, rot8);
      P2PANON_CHACHA_QR128(v[1], v[6], v[11], v[12], rot16, rot8);
      P2PANON_CHACHA_QR128(v[2], v[7], v[8], v[13], rot16, rot8);
      P2PANON_CHACHA_QR128(v[3], v[4], v[9], v[14], rot16, rot8);
    }
    for (int w = 0; w < 16; ++w) v[w] = _mm_add_epi32(v[w], inp[w]);
    const std::uint8_t* s = src + offset;
    std::uint8_t* d = dst + offset;
    for (int g = 0; g < 4; ++g) {
      const __m128i t0 = _mm_unpacklo_epi32(v[4 * g + 0], v[4 * g + 1]);
      const __m128i t1 = _mm_unpackhi_epi32(v[4 * g + 0], v[4 * g + 1]);
      const __m128i t2 = _mm_unpacklo_epi32(v[4 * g + 2], v[4 * g + 3]);
      const __m128i t3 = _mm_unpackhi_epi32(v[4 * g + 2], v[4 * g + 3]);
      const __m128i blk[4] = {
          _mm_unpacklo_epi64(t0, t2), _mm_unpackhi_epi64(t0, t2),
          _mm_unpacklo_epi64(t1, t3), _mm_unpackhi_epi64(t1, t3)};
      for (int j = 0; j < 4; ++j) {
        const std::size_t at = static_cast<std::size_t>(j) * 64 +
                               static_cast<std::size_t>(g) * 16;
        _mm_storeu_si128(
            reinterpret_cast<__m128i*>(d + at),
            _mm_xor_si128(blk[j], _mm_loadu_si128(
                                      reinterpret_cast<const __m128i*>(s + at))));
      }
    }
    counter += 4;
    offset += 256;
  }
  if (offset < len) xor_ref(base, counter, src + offset, dst + offset, len - offset);
}

#define P2PANON_CHACHA_QR256(a, b, c, d, rot16, rot8)                   \
  do {                                                                  \
    (a) = _mm256_add_epi32((a), (b));                                   \
    (d) = _mm256_shuffle_epi8(_mm256_xor_si256((d), (a)), (rot16));     \
    (c) = _mm256_add_epi32((c), (d));                                   \
    (b) = _mm256_xor_si256((b), (c));                                   \
    (b) = _mm256_or_si256(_mm256_slli_epi32((b), 12),                   \
                          _mm256_srli_epi32((b), 20));                  \
    (a) = _mm256_add_epi32((a), (b));                                   \
    (d) = _mm256_shuffle_epi8(_mm256_xor_si256((d), (a)), (rot8));      \
    (c) = _mm256_add_epi32((c), (d));                                   \
    (b) = _mm256_xor_si256((b), (c));                                   \
    (b) = _mm256_or_si256(_mm256_slli_epi32((b), 7),                    \
                          _mm256_srli_epi32((b), 25));                  \
  } while (0)

__attribute__((target("avx2"))) void xor_avx2(const std::uint32_t base[16],
                                              std::uint64_t counter,
                                              const std::uint8_t* src,
                                              std::uint8_t* dst,
                                              std::size_t len) {
  // Eight blocks per step: lane = block, with blocks 0-3 in the low 128-bit
  // half and 4-7 in the high half. vpshufb permutes within each half, so
  // the SSSE3 rotate masks broadcast straight up, and the transpose works
  // per half — after unpacking, each 256-bit result carries block j in its
  // low half and block j+4 in its high half, stored as two 128-bit halves
  // 256 bytes apart.
  const __m128i rot16_128 =
      _mm_set_epi8(13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2);
  const __m128i rot8_128 =
      _mm_set_epi8(14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3);
  const __m256i rot16 = _mm256_broadcastsi128_si256(rot16_128);
  const __m256i rot8 = _mm256_broadcastsi128_si256(rot8_128);
  std::size_t offset = 0;
  while (len - offset >= 512) {
    __m256i inp[16];
    for (int w = 0; w < 16; ++w) {
      inp[w] = _mm256_set1_epi32(static_cast<int>(base[w]));
    }
    inp[12] = _mm256_add_epi32(
        _mm256_set1_epi32(
            static_cast<int>(static_cast<std::uint32_t>(counter))),
        _mm256_set_epi32(7, 6, 5, 4, 3, 2, 1, 0));
    __m256i v[16];
    for (int w = 0; w < 16; ++w) v[w] = inp[w];
    for (int round = 0; round < 10; ++round) {
      P2PANON_CHACHA_QR256(v[0], v[4], v[8], v[12], rot16, rot8);
      P2PANON_CHACHA_QR256(v[1], v[5], v[9], v[13], rot16, rot8);
      P2PANON_CHACHA_QR256(v[2], v[6], v[10], v[14], rot16, rot8);
      P2PANON_CHACHA_QR256(v[3], v[7], v[11], v[15], rot16, rot8);
      P2PANON_CHACHA_QR256(v[0], v[5], v[10], v[15], rot16, rot8);
      P2PANON_CHACHA_QR256(v[1], v[6], v[11], v[12], rot16, rot8);
      P2PANON_CHACHA_QR256(v[2], v[7], v[8], v[13], rot16, rot8);
      P2PANON_CHACHA_QR256(v[3], v[4], v[9], v[14], rot16, rot8);
    }
    for (int w = 0; w < 16; ++w) v[w] = _mm256_add_epi32(v[w], inp[w]);
    const std::uint8_t* s = src + offset;
    std::uint8_t* d = dst + offset;
    for (int g = 0; g < 4; ++g) {
      const __m256i t0 = _mm256_unpacklo_epi32(v[4 * g + 0], v[4 * g + 1]);
      const __m256i t1 = _mm256_unpackhi_epi32(v[4 * g + 0], v[4 * g + 1]);
      const __m256i t2 = _mm256_unpacklo_epi32(v[4 * g + 2], v[4 * g + 3]);
      const __m256i t3 = _mm256_unpackhi_epi32(v[4 * g + 2], v[4 * g + 3]);
      const __m256i blk[4] = {
          _mm256_unpacklo_epi64(t0, t2), _mm256_unpackhi_epi64(t0, t2),
          _mm256_unpacklo_epi64(t1, t3), _mm256_unpackhi_epi64(t1, t3)};
      for (int j = 0; j < 4; ++j) {
        const std::size_t lo_at = static_cast<std::size_t>(j) * 64 +
                                  static_cast<std::size_t>(g) * 16;
        const std::size_t hi_at = lo_at + 256;
        _mm_storeu_si128(
            reinterpret_cast<__m128i*>(d + lo_at),
            _mm_xor_si128(_mm256_castsi256_si128(blk[j]),
                          _mm_loadu_si128(
                              reinterpret_cast<const __m128i*>(s + lo_at))));
        _mm_storeu_si128(
            reinterpret_cast<__m128i*>(d + hi_at),
            _mm_xor_si128(_mm256_extracti128_si256(blk[j], 1),
                          _mm_loadu_si128(
                              reinterpret_cast<const __m128i*>(s + hi_at))));
      }
    }
    counter += 8;
    offset += 512;
  }
  if (offset < len) xor_ssse3(base, counter, src + offset, dst + offset, len - offset);
}

#endif  // P2PANON_CHACHA_X86

using XorFn = void (*)(const std::uint32_t[16], std::uint64_t,
                       const std::uint8_t*, std::uint8_t*, std::size_t);

struct Dispatch {
  XorFn fn;
  const char* name;
};

const Dispatch& dispatch() {
  static const Dispatch d = [] {
#if P2PANON_CHACHA_X86
    if (__builtin_cpu_supports("avx2")) {
      return Dispatch{xor_avx2, "avx2"};
    }
    if (__builtin_cpu_supports("ssse3")) {
      return Dispatch{xor_ssse3, "ssse3"};
    }
#endif
    return Dispatch{xor_wide4, "wide4"};
  }();
  return d;
}

// Shared validation: equal sizes and — the counter-wrap bugfix — the
// keystream must fit in the 32-bit block space above initial_counter. The
// old code incremented the 32-bit state word directly and silently wrapped
// to block 0 after 256 GiB, reusing keystream under the same (key, nonce).
void check_xor_args(std::uint32_t initial_counter, ByteView src,
                    MutableByteView dst) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("chacha20_xor: src/dst size mismatch");
  }
  const std::uint64_t blocks = (static_cast<std::uint64_t>(src.size()) + 63) / 64;
  const std::uint64_t space = (std::uint64_t{1} << 32) - initial_counter;
  if (blocks > space) {
    throw std::length_error(
        "chacha20_xor: keystream would wrap the 32-bit block counter "
        "(keystream reuse)");
  }
}

}  // namespace

std::array<std::uint8_t, 64> chacha20_block(const ChaChaKey& key,
                                            const ChaChaNonce& nonce,
                                            std::uint32_t counter) {
  std::uint32_t state[16];
  init_state(state, key, nonce, counter);
  std::array<std::uint8_t, 64> out;
  block_to_keystream(state, out.data());
  return out;
}

void chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t initial_counter, MutableByteView data) {
  chacha20_xor(key, nonce, initial_counter, ByteView(data), data);
}

void chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t initial_counter, ByteView src,
                  MutableByteView dst) {
  check_xor_args(initial_counter, src, dst);
  if (src.empty()) return;
  std::uint32_t base[16];
  init_state(base, key, nonce, 0);
  dispatch().fn(base, initial_counter, src.data(), dst.data(), src.size());
}

Bytes chacha20_encrypt(const ChaChaKey& key, const ChaChaNonce& nonce,
                       std::uint32_t initial_counter, ByteView data) {
  Bytes out(data.size());
  chacha20_xor(key, nonce, initial_counter, data, out);
  return out;
}

const char* chacha20_kernel_name() { return dispatch().name; }

// Weak-linked provenance hook, same shape as p2panon_gf256_kernel_name:
// obs/export records the dispatched ChaCha kernel in --json manifests when
// the crypto library is linked in.
extern "C" const char* p2panon_chacha20_kernel_name() {
  return chacha20_kernel_name();
}

namespace crypto_detail {

bool kernel_available(Kernel k) {
  switch (k) {
    case Kernel::kRef:
    case Kernel::kWide4:
      return true;
    case Kernel::kSsse3:
#if P2PANON_CHACHA_X86
      return __builtin_cpu_supports("ssse3");
#else
      return false;
#endif
    case Kernel::kAvx2:
#if P2PANON_CHACHA_X86
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

const char* kernel_label(Kernel k) {
  switch (k) {
    case Kernel::kRef:
      return "ref";
    case Kernel::kWide4:
      return "wide4";
    case Kernel::kSsse3:
      return "ssse3";
    case Kernel::kAvx2:
      return "avx2";
  }
  return "?";
}

void chacha20_xor(Kernel k, const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t initial_counter, ByteView src,
                  MutableByteView dst) {
  check_xor_args(initial_counter, src, dst);
  if (!kernel_available(k)) {
    throw std::invalid_argument("crypto_detail: kernel unavailable on host");
  }
  if (src.empty()) return;
  std::uint32_t base[16];
  init_state(base, key, nonce, 0);
  switch (k) {
    case Kernel::kRef:
      xor_ref(base, initial_counter, src.data(), dst.data(), src.size());
      return;
    case Kernel::kWide4:
      xor_wide4(base, initial_counter, src.data(), dst.data(), src.size());
      return;
    case Kernel::kSsse3:
#if P2PANON_CHACHA_X86
      xor_ssse3(base, initial_counter, src.data(), dst.data(), src.size());
#endif
      return;
    case Kernel::kAvx2:
#if P2PANON_CHACHA_X86
      xor_avx2(base, initial_counter, src.data(), dst.data(), src.size());
#endif
      return;
  }
}

}  // namespace crypto_detail

}  // namespace p2panon::crypto
