// X25519 Diffie–Hellman over Curve25519 (RFC 7748).
//
// Field arithmetic mod 2^255 - 19 with five 51-bit limbs and a Montgomery
// ladder; the implementation favors auditability over speed. Verified
// against the RFC 7748 §5.2 and §6.1 vectors.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace p2panon::crypto {

constexpr std::size_t kX25519KeySize = 32;
using X25519Key = std::array<std::uint8_t, kX25519KeySize>;

/// Scalar multiplication: out = scalar * point (u-coordinate). The scalar
/// is clamped per RFC 7748.
X25519Key x25519(const X25519Key& scalar, const X25519Key& u_point);

/// Public key for a (clamped) private scalar: scalar * base point (u = 9).
X25519Key x25519_base(const X25519Key& scalar);

}  // namespace p2panon::crypto
