#include "crypto/x25519.hpp"

#include <cstring>

namespace p2panon::crypto {

namespace {

// Field element mod p = 2^255 - 19, five 51-bit limbs, little-endian.
struct Fe {
  std::uint64_t v[5];
};

constexpr std::uint64_t kMask51 = (1ULL << 51) - 1;

Fe fe_zero() { return Fe{{0, 0, 0, 0, 0}}; }
Fe fe_one() { return Fe{{1, 0, 0, 0, 0}}; }

Fe fe_add(const Fe& a, const Fe& b) {
  Fe out;
  for (int i = 0; i < 5; ++i) out.v[i] = a.v[i] + b.v[i];
  return out;
}

// a - b, adding 2p to keep limbs non-negative.
Fe fe_sub(const Fe& a, const Fe& b) {
  // 2p in 51-bit limbs: (2^255 - 19) * 2
  static constexpr std::uint64_t two_p[5] = {
      0xfffffffffffdaULL, 0xffffffffffffeULL, 0xffffffffffffeULL,
      0xffffffffffffeULL, 0xffffffffffffeULL};
  Fe out;
  for (int i = 0; i < 5; ++i) out.v[i] = a.v[i] + two_p[i] - b.v[i];
  return out;
}

void fe_carry(Fe& f) {
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 4; ++i) {
      f.v[i + 1] += f.v[i] >> 51;
      f.v[i] &= kMask51;
    }
    f.v[0] += 19 * (f.v[4] >> 51);
    f.v[4] &= kMask51;
  }
}

Fe fe_mul(const Fe& f, const Fe& g) {
  using u128 = unsigned __int128;
  const std::uint64_t f0 = f.v[0], f1 = f.v[1], f2 = f.v[2], f3 = f.v[3],
                      f4 = f.v[4];
  const std::uint64_t g0 = g.v[0], g1 = g.v[1], g2 = g.v[2], g3 = g.v[3],
                      g4 = g.v[4];
  const std::uint64_t g1_19 = 19 * g1, g2_19 = 19 * g2, g3_19 = 19 * g3,
                      g4_19 = 19 * g4;

  u128 h0 = (u128)f0 * g0 + (u128)f1 * g4_19 + (u128)f2 * g3_19 +
            (u128)f3 * g2_19 + (u128)f4 * g1_19;
  u128 h1 = (u128)f0 * g1 + (u128)f1 * g0 + (u128)f2 * g4_19 +
            (u128)f3 * g3_19 + (u128)f4 * g2_19;
  u128 h2 = (u128)f0 * g2 + (u128)f1 * g1 + (u128)f2 * g0 +
            (u128)f3 * g4_19 + (u128)f4 * g3_19;
  u128 h3 = (u128)f0 * g3 + (u128)f1 * g2 + (u128)f2 * g1 + (u128)f3 * g0 +
            (u128)f4 * g4_19;
  u128 h4 = (u128)f0 * g4 + (u128)f1 * g3 + (u128)f2 * g2 + (u128)f3 * g1 +
            (u128)f4 * g0;

  // Carry chain over 128-bit accumulators.
  std::uint64_t r0, r1, r2, r3, r4;
  std::uint64_t carry;

  r0 = (std::uint64_t)h0 & kMask51;
  carry = (std::uint64_t)(h0 >> 51);
  h1 += carry;
  r1 = (std::uint64_t)h1 & kMask51;
  carry = (std::uint64_t)(h1 >> 51);
  h2 += carry;
  r2 = (std::uint64_t)h2 & kMask51;
  carry = (std::uint64_t)(h2 >> 51);
  h3 += carry;
  r3 = (std::uint64_t)h3 & kMask51;
  carry = (std::uint64_t)(h3 >> 51);
  h4 += carry;
  r4 = (std::uint64_t)h4 & kMask51;
  carry = (std::uint64_t)(h4 >> 51);
  r0 += 19 * carry;
  carry = r0 >> 51;
  r0 &= kMask51;
  r1 += carry;

  return Fe{{r0, r1, r2, r3, r4}};
}

Fe fe_sqr(const Fe& f) { return fe_mul(f, f); }

Fe fe_mul_small(const Fe& f, std::uint64_t s) {
  using u128 = unsigned __int128;
  u128 acc[5];
  for (int i = 0; i < 5; ++i) acc[i] = (u128)f.v[i] * s;
  std::uint64_t r[5];
  std::uint64_t carry = 0;
  for (int i = 0; i < 5; ++i) {
    acc[i] += carry;
    r[i] = (std::uint64_t)acc[i] & kMask51;
    carry = (std::uint64_t)(acc[i] >> 51);
  }
  r[0] += 19 * carry;
  Fe out{{r[0], r[1], r[2], r[3], r[4]}};
  fe_carry(out);
  return out;
}

// Inversion via Fermat: f^(p-2), square-and-multiply over p-2's bits.
Fe fe_invert(const Fe& f) {
  // p - 2 = 2^255 - 21 = (2^255 - 1) - 20: bits 0..254 are all 1 except
  // bits 2 and 4 (low byte 0xeb = 0b11101011).
  Fe result = fe_one();
  Fe base = f;
  for (int bit = 0; bit < 255; ++bit) {
    const bool set = !(bit == 2 || bit == 4);
    if (set) result = fe_mul(result, base);
    base = fe_sqr(base);
  }
  return result;
}

Fe fe_from_bytes(const std::uint8_t bytes[32]) {
  // Limb i holds bits [51*i, 51*i + 51); masking limb 4 to 51 bits also
  // discards bit 255, as RFC 7748 requires.
  auto load = [&](int byte, int shift) {
    std::uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= (std::uint64_t)bytes[byte + i] << (8 * i);
    }
    return out >> shift;
  };
  Fe out;
  out.v[0] = load(0, 0) & kMask51;
  out.v[1] = load(6, 3) & kMask51;
  out.v[2] = load(12, 6) & kMask51;
  out.v[3] = load(19, 1) & kMask51;
  out.v[4] = load(24, 12) & kMask51;
  return out;
}

void fe_to_bytes(std::uint8_t out[32], Fe f) {
  fe_carry(f);
  // Canonicalize: subtract p if f >= p, twice to be safe.
  for (int pass = 0; pass < 2; ++pass) {
    std::uint64_t g[5];
    g[0] = f.v[0] + 19;
    std::uint64_t carry = g[0] >> 51;
    g[0] &= kMask51;
    for (int i = 1; i < 5; ++i) {
      g[i] = f.v[i] + carry;
      carry = g[i] >> 51;
      g[i] &= kMask51;
    }
    // carry is 1 iff f + 19 >= 2^255, i.e. f >= p.
    if (carry) {
      for (int i = 0; i < 5; ++i) f.v[i] = g[i];
    }
  }
  std::uint64_t packed[4];
  packed[0] = f.v[0] | (f.v[1] << 51);
  packed[1] = (f.v[1] >> 13) | (f.v[2] << 38);
  packed[2] = (f.v[2] >> 26) | (f.v[3] << 25);
  packed[3] = (f.v[3] >> 39) | (f.v[4] << 12);
  for (int i = 0; i < 4; ++i) store_u64le(out + 8 * i, packed[i]);
}

void fe_cswap(std::uint64_t swap, Fe& a, Fe& b) {
  const std::uint64_t mask = 0 - swap;  // all-ones when swap == 1
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t t = mask & (a.v[i] ^ b.v[i]);
    a.v[i] ^= t;
    b.v[i] ^= t;
  }
}

}  // namespace

X25519Key x25519(const X25519Key& scalar, const X25519Key& u_point) {
  std::uint8_t k[32];
  std::memcpy(k, scalar.data(), 32);
  k[0] &= 248;
  k[31] &= 127;
  k[31] |= 64;

  const Fe x1 = fe_from_bytes(u_point.data());
  Fe x2 = fe_one();
  Fe z2 = fe_zero();
  Fe x3 = x1;
  Fe z3 = fe_one();
  std::uint64_t swap = 0;

  for (int t = 254; t >= 0; --t) {
    const std::uint64_t k_t = (k[t / 8] >> (t % 8)) & 1;
    swap ^= k_t;
    fe_cswap(swap, x2, x3);
    fe_cswap(swap, z2, z3);
    swap = k_t;

    Fe a = fe_add(x2, z2);
    fe_carry(a);
    const Fe aa = fe_sqr(a);
    Fe b = fe_sub(x2, z2);
    fe_carry(b);
    const Fe bb = fe_sqr(b);
    Fe e = fe_sub(aa, bb);
    fe_carry(e);
    Fe c = fe_add(x3, z3);
    fe_carry(c);
    Fe d = fe_sub(x3, z3);
    fe_carry(d);
    const Fe da = fe_mul(d, a);
    const Fe cb = fe_mul(c, b);
    Fe da_plus_cb = fe_add(da, cb);
    fe_carry(da_plus_cb);
    Fe da_minus_cb = fe_sub(da, cb);
    fe_carry(da_minus_cb);
    x3 = fe_sqr(da_plus_cb);
    z3 = fe_mul(x1, fe_sqr(da_minus_cb));
    x2 = fe_mul(aa, bb);
    const Fe a24e = fe_mul_small(e, 121665);
    Fe aa_plus = fe_add(aa, a24e);
    fe_carry(aa_plus);
    z2 = fe_mul(e, aa_plus);
  }

  fe_cswap(swap, x2, x3);
  fe_cswap(swap, z2, z3);

  const Fe result = fe_mul(x2, fe_invert(z2));
  X25519Key out;
  fe_to_bytes(out.data(), result);
  return out;
}

X25519Key x25519_base(const X25519Key& scalar) {
  X25519Key base{};
  base[0] = 9;
  return x25519(scalar, base);
}

}  // namespace p2panon::crypto
