#include "crypto/aead.hpp"

#include <cstring>
#include <stdexcept>

namespace p2panon::crypto {

namespace {

PolyKey poly_key_for(const ChaChaKey& key, const ChaChaNonce& nonce) {
  const auto block = chacha20_block(key, nonce, 0);
  PolyKey pk;
  std::memcpy(pk.data(), block.data(), pk.size());
  return pk;
}

// MAC over aad || pad16 || ciphertext || pad16 || le64(|aad|) || le64(|ct|),
// absorbed incrementally — the padded stream never exists in memory.
PolyTag mac_tag(const ChaChaKey& key, const ChaChaNonce& nonce, ByteView aad,
                ByteView ciphertext) {
  Poly1305 mac(poly_key_for(key, nonce));
  mac.update(aad);
  mac.pad16();
  mac.update(ciphertext);
  mac.pad16();
  std::uint8_t lengths[16];
  store_u64le(lengths, aad.size());
  store_u64le(lengths + 8, ciphertext.size());
  mac.update(ByteView(lengths, 16));
  return mac.finish();
}

}  // namespace

Bytes aead_seal(const ChaChaKey& key, const ChaChaNonce& nonce, ByteView aad,
                ByteView plaintext) {
  Bytes out(plaintext.size() + kAeadTagSize);
  if (!plaintext.empty()) {
    std::memcpy(out.data(), plaintext.data(), plaintext.size());
  }
  aead_seal_into(key, nonce, aad, out);
  return out;
}

std::optional<Bytes> aead_open(const ChaChaKey& key, const ChaChaNonce& nonce,
                               ByteView aad, ByteView sealed) {
  if (sealed.size() < kAeadTagSize) return std::nullopt;
  Bytes buf(sealed.begin(), sealed.end());
  if (!aead_open_into(key, nonce, aad, buf)) return std::nullopt;
  buf.resize(buf.size() - kAeadTagSize);
  return buf;
}

void aead_seal_into(const ChaChaKey& key, const ChaChaNonce& nonce,
                    ByteView aad, MutableByteView buf) {
  if (buf.size() < kAeadTagSize) {
    throw std::invalid_argument("aead_seal_into: buffer smaller than tag");
  }
  const MutableByteView body = buf.first(buf.size() - kAeadTagSize);
  chacha20_xor(key, nonce, 1, body);
  const PolyTag tag = mac_tag(key, nonce, aad, ByteView(body));
  std::memcpy(buf.data() + body.size(), tag.data(), tag.size());
}

bool aead_open_into(const ChaChaKey& key, const ChaChaNonce& nonce,
                    ByteView aad, MutableByteView buf) {
  if (buf.size() < kAeadTagSize) return false;
  const MutableByteView body = buf.first(buf.size() - kAeadTagSize);
  const PolyTag actual = mac_tag(key, nonce, aad, ByteView(body));
  if (!constant_time_equal(ByteView(actual.data(), actual.size()),
                           ByteView(buf.data() + body.size(), kAeadTagSize))) {
    return false;
  }
  chacha20_xor(key, nonce, 1, body);
  return true;
}

ChaChaNonce nonce_from_seq(std::uint64_t seq) {
  ChaChaNonce nonce{};
  store_u64le(nonce.data(), seq);
  return nonce;
}

}  // namespace p2panon::crypto
