#include "crypto/aead.hpp"

#include <cstring>

namespace p2panon::crypto {

namespace {

PolyKey poly_key_for(const ChaChaKey& key, const ChaChaNonce& nonce) {
  const auto block = chacha20_block(key, nonce, 0);
  PolyKey pk;
  std::memcpy(pk.data(), block.data(), pk.size());
  return pk;
}

Bytes mac_input(ByteView aad, ByteView ciphertext) {
  Bytes input;
  input.reserve(aad.size() + ciphertext.size() + 32);
  append(input, aad);
  input.resize((input.size() + 15) / 16 * 16, 0);
  append(input, ciphertext);
  input.resize((input.size() + 15) / 16 * 16, 0);
  std::uint8_t lengths[16];
  store_u64le(lengths, aad.size());
  store_u64le(lengths + 8, ciphertext.size());
  append(input, ByteView(lengths, 16));
  return input;
}

}  // namespace

Bytes aead_seal(const ChaChaKey& key, const ChaChaNonce& nonce, ByteView aad,
                ByteView plaintext) {
  Bytes ciphertext = chacha20_encrypt(key, nonce, 1, plaintext);
  const PolyKey pk = poly_key_for(key, nonce);
  const PolyTag tag = poly1305(pk, mac_input(aad, ciphertext));
  append(ciphertext, ByteView(tag.data(), tag.size()));
  return ciphertext;
}

std::optional<Bytes> aead_open(const ChaChaKey& key, const ChaChaNonce& nonce,
                               ByteView aad, ByteView sealed) {
  if (sealed.size() < kAeadTagSize) return std::nullopt;
  const ByteView ciphertext = sealed.first(sealed.size() - kAeadTagSize);
  PolyTag tag;
  std::memcpy(tag.data(), sealed.data() + ciphertext.size(), tag.size());
  const PolyKey pk = poly_key_for(key, nonce);
  if (!poly1305_verify(tag, pk, mac_input(aad, ciphertext))) {
    return std::nullopt;
  }
  return chacha20_encrypt(key, nonce, 1, ciphertext);
}

ChaChaNonce nonce_from_seq(std::uint64_t seq) {
  ChaChaNonce nonce{};
  store_u64le(nonce.data(), seq);
  return nonce;
}

}  // namespace p2panon::crypto
