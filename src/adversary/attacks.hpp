// Offline traffic-analysis attack engine over captured FlowLogs
// (DESIGN §10).
//
// Every attack consumes only what a passive wire observer gets — the
// FlowRecord fields — plus, for the predecessor attack, a compromised-node
// set modelling the paper's fraction-f insider adversary. Attacks run
// offline over the log after the run, mirroring how traffic analysis is
// done in practice, and emit an AnonymityReport: guess-success rate,
// empirical anonymity-set size, and the Shannon entropy of the attacker's
// posterior, ready to compare against the Eq. 4 closed forms in
// src/analysis/anonymity.
//
// Shared mechanics: an "origin send" is a forward-channel send from a node
// with no forward-channel delivery into it within the preceding
// origin_hold_us. Relays in this codebase forward synchronously at the
// delivery instant, so a small hold window separates initiators (and cover
// senders) from relays without any protocol knowledge the observer would
// not have.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adversary/link_observer.hpp"
#include "common/types.hpp"

namespace p2panon::adversary {

/// The paper's fraction-f insider model: a fixed set of compromised nodes
/// that report what they see (here: which predecessor handed them an
/// origin send). `protect` lets experiments keep designated roles (the
/// measured initiator/responder) honest, matching the paper's analysis
/// where the initiator is by definition not the attacker.
struct CompromiseModel {
  std::vector<bool> compromised;  // indexed by NodeId
  double fraction = 0.0;          // requested f (before rounding)

  /// Plants round(f * n) compromised nodes drawn uniformly from
  /// [0, n) \ protect, using a dedicated RNG stream.
  static CompromiseModel plant(std::size_t n, double fraction,
                               std::uint64_t seed,
                               const std::vector<NodeId>& protect = {});

  bool is_compromised(NodeId node) const {
    return node < compromised.size() && compromised[node];
  }
  std::size_t count() const;
  std::size_t honest_count() const { return compromised.size() - count(); }
};

/// One observation interval, typically a session lifetime. Attacks score
/// each window independently (predecessor, correlation) or jointly
/// (intersection).
struct TrialWindow {
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
};

/// What the attacker is trying to de-anonymize, and the log to do it
/// from. `initiator` is ground truth used ONLY for scoring the attack's
/// output — the attacks never condition on it.
struct AttackScenario {
  const FlowLog* log = nullptr;
  NodeId initiator = 0;
  NodeId responder = 0;
  std::size_t num_nodes = 0;
  std::uint32_t min_flow_bytes = 0;     // drop runt datagrams below this
  std::uint64_t origin_hold_us = 1000;  // relay-forward detection window
};

/// Attack outcome. success_rate is the attacker's *expected* probability
/// of naming the initiator — the mean posterior mass on the true
/// initiator — which avoids argmax tie-break artifacts on small scenarios
/// while agreeing with guess-accuracy in expectation.
struct AnonymityReport {
  std::string attack;
  std::size_t trials = 0;          // windows (or egress events) scored
  std::size_t trials_skipped = 0;  // fell off the ring buffer, not scored
  double success_rate = 0.0;       // mean posterior mass on the initiator
  double compromise_rate = 0.0;    // trials with >= 1 Case-1 observation
  double anonymity_set_mean = 0.0;     // mean candidate-set size
  double posterior_entropy_bits = 0.0; // mean Shannon entropy of posterior
  // Closed-form comparators, filled by the caller from analysis/anonymity
  // (the attack itself has no protocol knowledge to derive them).
  double baseline_success = 0.0;
  double baseline_entropy_bits = 0.0;
};

/// Paper §5 Case 1: compromised first relays report the predecessor that
/// handed them an origin send; windows with no such observation fall back
/// to the uniform guess over the honest pool (Case 2).
AnonymityReport predecessor_attack(const AttackScenario& scenario,
                                   const CompromiseModel& model,
                                   const std::vector<TrialWindow>& windows);

/// Intersection attack: the candidate set is the intersection, over every
/// window in which the responder received forward traffic, of the origin
/// senders active in that window. Persistent senders survive; churned
/// cover senders drop out.
AnonymityReport intersection_attack(const AttackScenario& scenario,
                                    const std::vector<TrialWindow>& windows);

/// Timing correlation: for each forward-channel delivery into the
/// responder, the candidates are the origin sends within the preceding
/// max_lag_us; the posterior is count-weighted over their senders. Cover
/// traffic dilutes the posterior, which is exactly the mitigation claim
/// this measures.
AnonymityReport correlation_attack(const AttackScenario& scenario,
                                   const std::vector<TrialWindow>& windows,
                                   std::uint64_t max_lag_us);

/// Shannon entropy (bits) of a discrete distribution given as
/// non-negative weights (normalized internally; zero total -> 0 bits).
double entropy_bits(const std::vector<double>& weights);

}  // namespace p2panon::adversary
