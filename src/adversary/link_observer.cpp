#include "adversary/link_observer.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace p2panon::adversary {

FlowLog::FlowLog(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("FlowLog: capacity must be >= 1");
  }
  // Columns grow to capacity on demand; a short run never pays the full
  // ring footprint.
}

void FlowLog::append(const FlowRecord& record) {
  if (time_us_.size() < capacity_) {
    time_us_.push_back(record.time_us);
    corr_.push_back(record.corr);
    from_.push_back(record.from);
    to_.push_back(record.to);
    bytes_.push_back(record.bytes);
    channel_.push_back(record.channel);
    dir_.push_back(static_cast<std::uint8_t>(record.dir));
  } else {
    time_us_[head_] = record.time_us;
    corr_[head_] = record.corr;
    from_[head_] = record.from;
    to_[head_] = record.to;
    bytes_[head_] = record.bytes;
    channel_[head_] = record.channel;
    dir_[head_] = static_cast<std::uint8_t>(record.dir);
    ++evicted_;
  }
  head_ = (head_ + 1) % capacity_;
  ++appended_;
}

std::size_t FlowLog::size() const { return time_us_.size(); }

std::size_t FlowLog::slot(std::size_t i) const {
  // Once full, head_ is the oldest slot; before that, slot 0 is.
  if (time_us_.size() < capacity_ || evicted_ == 0) return i;
  return (head_ + i) % capacity_;
}

FlowRecord FlowLog::at(std::size_t i) const {
  const std::size_t s = slot(i);
  FlowRecord record;
  record.dir = static_cast<FlowDir>(dir_[s]);
  record.from = from_[s];
  record.to = to_[s];
  record.bytes = bytes_[s];
  record.time_us = time_us_[s];
  record.corr = corr_[s];
  record.channel = channel_[s];
  return record;
}

std::uint64_t FlowLog::earliest_us() const {
  return size() == 0 ? 0 : time_us_[slot(0)];
}

std::uint64_t FlowLog::latest_us() const {
  return size() == 0 ? 0 : time_us_[slot(size() - 1)];
}

std::string FlowLog::to_jsonl() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < size(); ++i) {
    const FlowRecord r = at(i);
    out << "{\"flow\":\"" << (r.dir == FlowDir::kSend ? "send" : "deliver")
        << "\",\"sim_us\":" << r.time_us << ",\"from\":" << r.from
        << ",\"to\":" << r.to << ",\"bytes\":" << r.bytes
        << ",\"chan\":" << static_cast<unsigned>(r.channel)
        << ",\"corr\":" << r.corr << "}\n";
  }
  return out.str();
}

bool FlowLog::write_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_jsonl();
  return static_cast<bool>(out);
}

LinkObserver::LinkObserver(ObserverConfig config, obs::Registry* metrics)
    : config_(config), log_(config.max_records), rng_(config.seed) {
  if (config_.sample_rate < 0.0 || config_.sample_rate > 1.0) {
    throw std::invalid_argument(
        "LinkObserver: sample_rate must be in [0, 1]");
  }
  if (metrics != nullptr) {
    flows_send_ =
        metrics->counter("adversary_flows_total", {{"dir", "send"}});
    flows_deliver_ =
        metrics->counter("adversary_flows_total", {{"dir", "deliver"}});
    flow_bytes_ = metrics->counter("adversary_flow_bytes_total");
    flows_sampled_out_ =
        metrics->counter("adversary_flows_sampled_out_total");
  }
}

void LinkObserver::record(FlowDir dir, NodeId from, NodeId to,
                          std::size_t bytes,
                          const net::LinkTapMeta& meta) {
  // Only draw when partial coverage is configured, so a full-coverage
  // observer consumes no randomness at all.
  if (config_.sample_rate < 1.0 &&
      !rng_.bernoulli(config_.sample_rate)) {
    ++sampled_out_;
    if (flows_sampled_out_ != nullptr) flows_sampled_out_->inc();
    return;
  }
  FlowRecord r;
  r.dir = dir;
  r.from = from;
  r.to = to;
  r.bytes = static_cast<std::uint32_t>(bytes);
  r.time_us = meta.when_us;
  r.corr = meta.correlation;
  r.channel = meta.protocol;
  log_.append(r);
  if (flow_bytes_ != nullptr) flow_bytes_->inc(bytes);
  if (dir == FlowDir::kSend) {
    if (flows_send_ != nullptr) flows_send_->inc();
  } else {
    if (flows_deliver_ != nullptr) flows_deliver_->inc();
  }
}

void LinkObserver::on_send(NodeId from, NodeId to, std::size_t bytes,
                           const net::LinkTapMeta& meta) {
  record(FlowDir::kSend, from, to, bytes, meta);
}

void LinkObserver::on_deliver(NodeId from, NodeId to, std::size_t bytes,
                              const net::LinkTapMeta& meta) {
  if (!config_.record_delivers) return;
  record(FlowDir::kDeliver, from, to, bytes, meta);
}

ObservedTransport::ObservedTransport(net::Transport& inner,
                                     net::LinkTap& tap, Clock clock)
    : inner_(inner), tap_(tap), clock_(std::move(clock)) {}

void ObservedTransport::send(NodeId from, NodeId to, Bytes payload) {
  net::LinkTapMeta meta;
  meta.when_us = now_us();
  meta.protocol = payload.empty() ? 0 : payload[0];
  tap_.on_send(from, to, payload.size(), meta);
  inner_.send(from, to, std::move(payload));
}

void ObservedTransport::register_handler(NodeId node, Handler handler) {
  // Wrap the handler so the tap sees the deliver edge too; loopback
  // transports dispatch synchronously, which preserves the
  // deliver-before-forward ordering the attacks rely on.
  inner_.register_handler(
      node, [this, handler = std::move(handler)](NodeId from, NodeId to,
                                                 const Bytes& payload) {
        net::LinkTapMeta meta;
        meta.when_us = now_us();
        meta.protocol = payload.empty() ? 0 : payload[0];
        tap_.on_deliver(from, to, payload.size(), meta);
        if (handler) handler(from, to, payload);
      });
}

}  // namespace p2panon::adversary
