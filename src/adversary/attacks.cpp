#include "adversary/attacks.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "common/rng.hpp"
#include "net/demux.hpp"

namespace p2panon::adversary {

namespace {

constexpr std::uint8_t kFwd =
    static_cast<std::uint8_t>(net::Channel::kAnonForward);

/// An origin send: forward-channel send with no forward-channel delivery
/// into the sender within the hold window — an initiator or cover sender
/// injecting fresh traffic, as opposed to a relay passing it on.
struct OriginSend {
  std::uint64_t t = 0;
  NodeId from = 0;
  NodeId to = 0;  // the first relay
};

struct FlowIndex {
  std::vector<OriginSend> origins;               // time-ordered
  std::vector<std::uint64_t> responder_ingress;  // fwd deliveries into R
};

/// Two passes over the log: first the per-node inbound delivery times
/// (append order is time order — sim time is monotonic — so the vectors
/// come out sorted), then origin classification by binary search.
FlowIndex build_index(const AttackScenario& s) {
  if (s.log == nullptr) {
    throw std::invalid_argument("AttackScenario: log must be set");
  }
  const FlowLog& log = *s.log;
  std::vector<std::vector<std::uint64_t>> inbound(s.num_nodes);
  FlowIndex index;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const FlowRecord r = log.at(i);
    if (r.channel != kFwd || r.bytes < s.min_flow_bytes) continue;
    if (r.dir != FlowDir::kDeliver || r.to >= s.num_nodes) continue;
    inbound[r.to].push_back(r.time_us);
    if (r.to == s.responder) index.responder_ingress.push_back(r.time_us);
  }
  for (std::size_t i = 0; i < log.size(); ++i) {
    const FlowRecord r = log.at(i);
    if (r.channel != kFwd || r.bytes < s.min_flow_bytes) continue;
    if (r.dir != FlowDir::kSend || r.from >= s.num_nodes) continue;
    const auto& in = inbound[r.from];
    const std::uint64_t lo =
        r.time_us >= s.origin_hold_us ? r.time_us - s.origin_hold_us : 0;
    const auto it = std::lower_bound(in.begin(), in.end(), lo);
    const bool relayed = it != in.end() && *it <= r.time_us;
    if (!relayed) index.origins.push_back({r.time_us, r.from, r.to});
  }
  return index;
}

/// Origin sends with t in [start, end], as an iterator pair.
std::pair<std::vector<OriginSend>::const_iterator,
          std::vector<OriginSend>::const_iterator>
origins_in(const std::vector<OriginSend>& origins, std::uint64_t start,
           std::uint64_t end) {
  const auto lo = std::lower_bound(
      origins.begin(), origins.end(), start,
      [](const OriginSend& o, std::uint64_t t) { return o.t < t; });
  const auto hi = std::upper_bound(
      lo, origins.end(), end,
      [](std::uint64_t t, const OriginSend& o) { return t < o.t; });
  return {lo, hi};
}

/// A window that starts before the ring's earliest surviving record has
/// lost traffic to eviction; scoring it would under-count, so skip it.
bool window_covered(const FlowLog& log, const TrialWindow& w) {
  return log.evicted() == 0 || w.start_us >= log.earliest_us();
}

double entropy_of_map(const std::map<NodeId, double>& weights) {
  std::vector<double> w;
  w.reserve(weights.size());
  for (const auto& [node, weight] : weights) w.push_back(weight);
  return entropy_bits(w);
}

double mass_on(const std::map<NodeId, double>& weights, NodeId node,
               double total) {
  const auto it = weights.find(node);
  if (it == weights.end() || total <= 0.0) return 0.0;
  return it->second / total;
}

}  // namespace

double entropy_bits(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double w : weights) {
    if (w <= 0.0) continue;
    const double p = w / total;
    h -= p * std::log2(p);
  }
  return h;
}

CompromiseModel CompromiseModel::plant(std::size_t n, double fraction,
                                       std::uint64_t seed,
                                       const std::vector<NodeId>& protect) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument(
        "CompromiseModel: fraction must be in [0, 1]");
  }
  CompromiseModel model;
  model.fraction = fraction;
  model.compromised.assign(n, false);
  std::vector<NodeId> eligible;
  eligible.reserve(n);
  for (NodeId id = 0; id < n; ++id) {
    if (std::find(protect.begin(), protect.end(), id) == protect.end()) {
      eligible.push_back(id);
    }
  }
  // round(f * n) insiders, as the paper counts f against the whole
  // population; capped by the eligible pool when roles are protected.
  std::size_t want = static_cast<std::size_t>(
      fraction * static_cast<double>(n) + 0.5);
  want = std::min(want, eligible.size());
  Rng rng(seed);
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.next_below(eligible.size() - i));
    std::swap(eligible[i], eligible[j]);
    model.compromised[eligible[i]] = true;
  }
  return model;
}

std::size_t CompromiseModel::count() const {
  return static_cast<std::size_t>(
      std::count(compromised.begin(), compromised.end(), true));
}

AnonymityReport predecessor_attack(const AttackScenario& scenario,
                                   const CompromiseModel& model,
                                   const std::vector<TrialWindow>& windows) {
  AnonymityReport report;
  report.attack = "predecessor";
  const FlowIndex index = build_index(scenario);
  const std::size_t honest = std::max<std::size_t>(1, model.honest_count());
  double success = 0.0, entropy = 0.0, set_size = 0.0;
  std::size_t scored = 0, with_case1 = 0;
  for (const TrialWindow& w : windows) {
    if (!window_covered(*scenario.log, w)) {
      ++report.trials_skipped;
      continue;
    }
    // Case-1 observations: origin sends whose first relay is an insider.
    // Each compromised first relay reports its predecessor.
    std::map<NodeId, double> posterior;
    double total = 0.0;
    const auto [lo, hi] = origins_in(index.origins, w.start_us, w.end_us);
    for (auto it = lo; it != hi; ++it) {
      if (model.is_compromised(it->to)) {
        posterior[it->from] += 1.0;
        total += 1.0;
      }
    }
    ++scored;
    if (total == 0.0) {
      // Case 2: nothing observed; uniform guess over the honest pool.
      success += 1.0 / static_cast<double>(honest);
      entropy += std::log2(static_cast<double>(honest));
      set_size += static_cast<double>(honest);
      continue;
    }
    ++with_case1;
    success += mass_on(posterior, scenario.initiator, total);
    entropy += entropy_of_map(posterior);
    set_size += static_cast<double>(posterior.size());
  }
  report.trials = scored;
  if (scored > 0) {
    const double denom = static_cast<double>(scored);
    report.success_rate = success / denom;
    report.compromise_rate = static_cast<double>(with_case1) / denom;
    report.anonymity_set_mean = set_size / denom;
    report.posterior_entropy_bits = entropy / denom;
  }
  return report;
}

AnonymityReport intersection_attack(const AttackScenario& scenario,
                                    const std::vector<TrialWindow>& windows) {
  AnonymityReport report;
  report.attack = "intersection";
  const FlowIndex index = build_index(scenario);
  std::set<NodeId> intersection;
  bool have_any = false;
  std::size_t scored = 0;
  for (const TrialWindow& w : windows) {
    if (!window_covered(*scenario.log, w)) {
      ++report.trials_skipped;
      continue;
    }
    // Only windows in which the responder actually received forward
    // traffic tie the session to the wire.
    const auto active = std::lower_bound(index.responder_ingress.begin(),
                                         index.responder_ingress.end(),
                                         w.start_us);
    if (active == index.responder_ingress.end() || *active > w.end_us) {
      continue;
    }
    std::set<NodeId> senders;
    const auto [lo, hi] = origins_in(index.origins, w.start_us, w.end_us);
    for (auto it = lo; it != hi; ++it) senders.insert(it->from);
    if (senders.empty()) continue;
    ++scored;
    if (!have_any) {
      intersection = std::move(senders);
      have_any = true;
    } else {
      std::set<NodeId> next;
      std::set_intersection(intersection.begin(), intersection.end(),
                            senders.begin(), senders.end(),
                            std::inserter(next, next.begin()));
      intersection = std::move(next);
    }
  }
  report.trials = scored;
  if (!have_any) {
    // No usable window: the attacker knows nothing beyond "not the
    // responder".
    const std::size_t pool = std::max<std::size_t>(1, scenario.num_nodes - 1);
    report.success_rate = 1.0 / static_cast<double>(pool);
    report.anonymity_set_mean = static_cast<double>(pool);
    report.posterior_entropy_bits = std::log2(static_cast<double>(pool));
    return report;
  }
  const std::size_t set = std::max<std::size_t>(1, intersection.size());
  report.anonymity_set_mean = static_cast<double>(intersection.size());
  report.posterior_entropy_bits =
      intersection.empty() ? 0.0 : std::log2(static_cast<double>(set));
  report.success_rate = intersection.count(scenario.initiator) != 0
                            ? 1.0 / static_cast<double>(set)
                            : 0.0;
  return report;
}

AnonymityReport correlation_attack(const AttackScenario& scenario,
                                   const std::vector<TrialWindow>& windows,
                                   std::uint64_t max_lag_us) {
  AnonymityReport report;
  report.attack = "correlation";
  const FlowIndex index = build_index(scenario);
  double success = 0.0, entropy = 0.0, set_size = 0.0;
  std::size_t scored = 0;
  const std::size_t pool = std::max<std::size_t>(1, scenario.num_nodes - 1);
  for (const TrialWindow& w : windows) {
    if (!window_covered(*scenario.log, w)) {
      ++report.trials_skipped;
      continue;
    }
    const auto e_lo = std::lower_bound(index.responder_ingress.begin(),
                                       index.responder_ingress.end(),
                                       w.start_us);
    const auto e_hi = std::upper_bound(e_lo, index.responder_ingress.end(),
                                       w.end_us);
    for (auto egress = e_lo; egress != e_hi; ++egress) {
      const std::uint64_t t = *egress;
      const std::uint64_t start = t >= max_lag_us ? t - max_lag_us : 0;
      std::map<NodeId, double> posterior;
      double total = 0.0;
      const auto [lo, hi] = origins_in(index.origins, start, t);
      for (auto it = lo; it != hi; ++it) {
        posterior[it->from] += 1.0;
        total += 1.0;
      }
      ++scored;
      if (total == 0.0) {
        // Egress with no candidate ingress (lag window too small):
        // uniform over everyone but the responder.
        success += 1.0 / static_cast<double>(pool);
        entropy += std::log2(static_cast<double>(pool));
        set_size += static_cast<double>(pool);
        continue;
      }
      success += mass_on(posterior, scenario.initiator, total);
      entropy += entropy_of_map(posterior);
      set_size += static_cast<double>(posterior.size());
    }
  }
  report.trials = scored;
  if (scored > 0) {
    const double denom = static_cast<double>(scored);
    report.success_rate = success / denom;
    report.anonymity_set_mean = set_size / denom;
    report.posterior_entropy_bits = entropy / denom;
  }
  return report;
}

}  // namespace p2panon::adversary
