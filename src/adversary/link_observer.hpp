// Passive global-observer capture layer (DESIGN §10).
//
// A LinkObserver implements net::LinkTap and records one flow record per
// observed datagram — link endpoints, simulator time, wire size, direction
// (send vs deliver), the demux channel byte, and the obs correlation id.
// It never sees payload bytes past the channel prefix: the API surface is
// exactly what a wire-level global passive adversary gets, so attacks
// built on the log cannot accidentally cheat.
//
// Records land in a FlowLog: a columnar (structure-of-arrays) ring buffer
// with a hard capacity bound, so a multi-hour run with millions of
// datagrams holds memory constant and simply forgets the oldest traffic.
// Sampling (keep each record i.i.d. with probability sample_rate) models a
// partial-coverage observer and bounds log growth further; the observer
// draws from its own RNG stream so enabling it never perturbs protocol
// randomness.
//
// Everything here defaults OFF in the harness: no LinkObserver is
// constructed unless an experiment asks for one, and a null tap on
// SimTransport is zero work per datagram.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace p2panon::adversary {

/// Direction of an observed datagram relative to the wire.
enum class FlowDir : std::uint8_t {
  kSend = 0,     // handed to the wire by a live sender
  kDeliver = 1,  // arrived at a live receiver with a handler
};

/// One observed datagram, materialized from the columnar log for reading.
struct FlowRecord {
  FlowDir dir = FlowDir::kSend;
  NodeId from = 0;
  NodeId to = 0;
  std::uint32_t bytes = 0;
  std::uint64_t time_us = 0;
  std::uint64_t corr = 0;       // obs correlation id at the tap point
  std::uint8_t channel = 0;     // demux channel byte (wire framing prefix)
};

/// Bounded columnar flow log. Append is O(1); once `capacity` records are
/// held the ring evicts the oldest. Readers index records oldest-first.
class FlowLog {
 public:
  explicit FlowLog(std::size_t capacity);

  void append(const FlowRecord& record);

  /// Records currently held (<= capacity).
  std::size_t size() const;
  /// i-th record, oldest first; i must be < size().
  FlowRecord at(std::size_t i) const;

  /// Total records ever appended / evicted by the ring bound. When
  /// evicted() > 0 the earliest traffic is gone — attacks report trials
  /// that fall before earliest_us() as skipped instead of mis-scoring.
  std::uint64_t appended() const { return appended_; }
  std::uint64_t evicted() const { return evicted_; }

  /// Time bounds of the held records (0 when empty).
  std::uint64_t earliest_us() const;
  std::uint64_t latest_us() const;

  /// One JSON object per record, newline-separated, oldest first — the
  /// link-record JSONL format tools/trace_analyze ingests via --flows.
  /// Example line:
  ///   {"flow":"send","sim_us":120,"from":4,"to":9,"bytes":512,
  ///    "chan":2,"corr":7}
  std::string to_jsonl() const;
  /// Writes to_jsonl() to `path`; returns false on I/O error.
  bool write_jsonl(const std::string& path) const;

  /// Heap footprint of the columnar ring (all columns, at capacity) for
  /// the capacity byte census.
  std::uint64_t memory_bytes() const {
    return static_cast<std::uint64_t>(time_us_.capacity()) * sizeof(std::uint64_t) +
           static_cast<std::uint64_t>(corr_.capacity()) * sizeof(std::uint64_t) +
           static_cast<std::uint64_t>(from_.capacity()) * sizeof(NodeId) +
           static_cast<std::uint64_t>(to_.capacity()) * sizeof(NodeId) +
           static_cast<std::uint64_t>(bytes_.capacity()) * sizeof(std::uint32_t) +
           static_cast<std::uint64_t>(channel_.capacity()) +
           static_cast<std::uint64_t>(dir_.capacity());
  }

 private:
  std::size_t slot(std::size_t i) const;

  std::size_t capacity_;
  std::size_t head_ = 0;  // next write slot
  std::uint64_t appended_ = 0;
  std::uint64_t evicted_ = 0;
  // Structure-of-arrays columns, all sized together.
  std::vector<std::uint64_t> time_us_;
  std::vector<std::uint64_t> corr_;
  std::vector<NodeId> from_;
  std::vector<NodeId> to_;
  std::vector<std::uint32_t> bytes_;
  std::vector<std::uint8_t> channel_;
  std::vector<std::uint8_t> dir_;
};

/// Observer knobs. The defaults describe a full-coverage observer; the
/// harness-level default is that no observer exists at all.
struct ObserverConfig {
  double sample_rate = 1.0;        // keep each record with this probability
  std::size_t max_records = 1u << 18;  // ring capacity (flow records)
  bool record_delivers = true;     // also log the deliver edge of each hop
  std::uint64_t seed = 0xad5e1;    // sampling stream (only drawn when < 1.0)
};

/// The capture layer: tap callbacks append to the owned FlowLog, with
/// optional registry counters (adversary_flows_total{dir=...},
/// adversary_flow_bytes_total, adversary_flows_sampled_out_total,
/// adversary_flows_evicted_total). Counters are only registered when a
/// registry is passed, and an observer is only constructed when enabled —
/// so disabled runs keep registry snapshots untouched.
class LinkObserver final : public net::LinkTap {
 public:
  explicit LinkObserver(ObserverConfig config = {},
                        obs::Registry* metrics = nullptr);

  void on_send(NodeId from, NodeId to, std::size_t bytes,
               const net::LinkTapMeta& meta) override;
  void on_deliver(NodeId from, NodeId to, std::size_t bytes,
                  const net::LinkTapMeta& meta) override;

  const FlowLog& log() const { return log_; }
  FlowLog& log() { return log_; }
  const ObserverConfig& config() const { return config_; }

  /// Records dropped by the sampling draw (not appended anywhere).
  std::uint64_t sampled_out() const { return sampled_out_; }

 private:
  void record(FlowDir dir, NodeId from, NodeId to, std::size_t bytes,
              const net::LinkTapMeta& meta);

  ObserverConfig config_;
  FlowLog log_;
  Rng rng_;
  std::uint64_t sampled_out_ = 0;
  // Lazily-absent metrics: null unless a registry was supplied.
  obs::Counter* flows_send_ = nullptr;
  obs::Counter* flows_deliver_ = nullptr;
  obs::Counter* flow_bytes_ = nullptr;
  obs::Counter* flows_sampled_out_ = nullptr;
};

/// Transport decorator for tests and loopback setups that have no
/// SimTransport to hook: forwards every call to the inner transport and
/// mirrors sends/deliveries into the tap. Timestamps come from `clock`
/// (a simulator-now function; defaults to a constant 0 for loopback unit
/// tests that only care about ordering).
class ObservedTransport final : public net::Transport {
 public:
  using Clock = std::function<std::uint64_t()>;

  ObservedTransport(net::Transport& inner, net::LinkTap& tap,
                    Clock clock = nullptr);

  void send(NodeId from, NodeId to, Bytes payload) override;
  void register_handler(NodeId node, Handler handler) override;
  std::uint64_t bytes_sent() const override { return inner_.bytes_sent(); }
  std::uint64_t messages_sent() const override {
    return inner_.messages_sent();
  }

 private:
  std::uint64_t now_us() const { return clock_ ? clock_() : 0; }

  net::Transport& inner_;
  net::LinkTap& tap_;
  Clock clock_;
};

}  // namespace p2panon::adversary
