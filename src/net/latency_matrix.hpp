// All-pairs network latency model.
//
// The paper uses a matrix measured with the King method over 1024 DNS
// servers (mean RTT 152 ms). That trace is not redistributable, so we
// substitute a synthetic matrix: nodes get coordinates in a 2-D Euclidean
// space plus a per-node heavy-tailed access-link delay, and the whole matrix
// is rescaled so the mean RTT matches a calibration target. This preserves
// the properties the experiments rely on — triangle-inequality-ish
// structure, heterogeneity across pairs, and the 152 ms mean (DESIGN.md
// "Substitutions").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"

namespace p2panon::net {

class LatencyMatrix {
 public:
  /// Generates a synthetic King-like matrix for `num_nodes`, rescaled so
  /// that the mean RTT equals `target_mean_rtt` (the paper's 152 ms).
  static LatencyMatrix synthetic(std::size_t num_nodes, Rng rng,
                                 SimDuration target_mean_rtt = from_millis(152));

  /// Builds from explicit one-way delays; `delays` is row-major N x N.
  LatencyMatrix(std::size_t num_nodes, std::vector<SimDuration> delays);

  /// One-way network delay from a to b. Symmetric by construction.
  SimDuration one_way(NodeId a, NodeId b) const {
    return delays_[static_cast<std::size_t>(a) * n_ + b];
  }

  SimDuration rtt(NodeId a, NodeId b) const {
    return one_way(a, b) + one_way(b, a);
  }

  std::size_t num_nodes() const { return n_; }

  /// Heap footprint of the delay table — the repo's canonical O(N²)
  /// structure, reported per-subsystem by the capacity byte census.
  std::uint64_t memory_bytes() const {
    return static_cast<std::uint64_t>(delays_.capacity()) *
           sizeof(SimDuration);
  }

  /// Mean RTT over all ordered pairs (a != b).
  SimDuration mean_rtt() const;

  /// Serializes to a text form ("N\n" then N*N microsecond values);
  /// round-trips with parse().
  std::string serialize() const;
  static LatencyMatrix parse(const std::string& text);

 private:
  std::size_t n_;
  std::vector<SimDuration> delays_;
};

}  // namespace p2panon::net
