// Transport abstraction the protocol layer is written against.
//
// A Transport delivers opaque datagrams between node ids. Delivery is
// best-effort: messages to (or from) dead nodes vanish, like UDP to a host
// that left the network. Two implementations exist:
//   - SimTransport: virtual-time delivery through the simulator, with delays
//     from a LatencyMatrix and liveness from the churn oracle.
//   - LoopbackTransport: immediate in-process delivery for examples and
//     protocol unit tests that need no simulator.
#pragma once

#include <cstdint>
#include <functional>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace p2panon::net {

class Transport {
 public:
  /// Invoked at the destination when a datagram arrives.
  using Handler =
      std::function<void(NodeId from, NodeId to, const Bytes& payload)>;

  virtual ~Transport() = default;

  /// Sends a datagram. Never fails synchronously; undeliverable messages
  /// are silently dropped (the anonymity layer detects loss end-to-end).
  virtual void send(NodeId from, NodeId to, Bytes payload) = 0;

  /// Installs the receive handler for a node (one per node; later
  /// registrations replace earlier ones).
  virtual void register_handler(NodeId node, Handler handler) = 0;

  /// Cumulative payload bytes handed to send() (bandwidth accounting; each
  /// relay hop counts separately, which matches the paper's per-hop
  /// bandwidth cost).
  virtual std::uint64_t bytes_sent() const = 0;

  /// Cumulative datagrams handed to send().
  virtual std::uint64_t messages_sent() const = 0;
};

}  // namespace p2panon::net
