// Transport abstraction the protocol layer is written against.
//
// A Transport delivers opaque datagrams between node ids. Delivery is
// best-effort: messages to (or from) dead nodes vanish, like UDP to a host
// that left the network. Two implementations exist:
//   - SimTransport: virtual-time delivery through the simulator, with delays
//     from a LatencyMatrix and liveness from the churn oracle.
//   - LoopbackTransport: immediate in-process delivery for examples and
//     protocol unit tests that need no simulator.
#pragma once

#include <cstdint>
#include <functional>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace p2panon::net {

/// Link-level metadata handed to a LinkTap alongside each observed
/// datagram. `protocol` is the demux channel byte (the first payload
/// byte) — the "port number" analog a wire observer legitimately sees;
/// 0 for empty payloads. `correlation` is the obs causal chain id active
/// at the tap point (deliveries inherit the send's chain via the event
/// queue), so flow records can be cross-referenced with span traces.
struct LinkTapMeta {
  std::uint64_t when_us = 0;     // simulator time at the tap point
  std::uint64_t correlation = 0;  // obs::current_correlation()
  std::uint8_t protocol = 0;      // demux channel byte, 0 if unframed
};

/// Passive wire observer: sees link endpoints, sizes and timing — never
/// payload plaintext (the onion layer's job is to make that useless
/// anyway, but the observer API should not even offer it). Install with
/// SimTransport::set_tap or wrap any Transport in an ObservedTransport.
/// on_send fires when a datagram is handed to the wire; on_deliver when
/// it reaches a live receiver with a handler. Drops are visible as a
/// send without a matching delivery.
class LinkTap {
 public:
  virtual ~LinkTap() = default;
  virtual void on_send(NodeId from, NodeId to, std::size_t bytes,
                       const LinkTapMeta& meta) = 0;
  virtual void on_deliver(NodeId from, NodeId to, std::size_t bytes,
                          const LinkTapMeta& meta) = 0;
};

class Transport {
 public:
  /// Invoked at the destination when a datagram arrives.
  using Handler =
      std::function<void(NodeId from, NodeId to, const Bytes& payload)>;

  virtual ~Transport() = default;

  /// Sends a datagram. Never fails synchronously; undeliverable messages
  /// are silently dropped (the anonymity layer detects loss end-to-end).
  virtual void send(NodeId from, NodeId to, Bytes payload) = 0;

  /// Installs the receive handler for a node (one per node; later
  /// registrations replace earlier ones).
  virtual void register_handler(NodeId node, Handler handler) = 0;

  /// Cumulative payload bytes handed to send() (bandwidth accounting; each
  /// relay hop counts separately, which matches the paper's per-hop
  /// bandwidth cost).
  virtual std::uint64_t bytes_sent() const = 0;

  /// Cumulative datagrams handed to send().
  virtual std::uint64_t messages_sent() const = 0;
};

}  // namespace p2panon::net
