#include "net/demux.hpp"

namespace p2panon::net {

Demux::Demux(Transport& transport, std::size_t num_nodes)
    : transport_(transport) {
  for (NodeId node = 0; node < num_nodes; ++node) {
    transport_.register_handler(
        node, [this](NodeId from, NodeId to, const Bytes& datagram) {
          dispatch(from, to, datagram);
        });
  }
}

void Demux::send(Channel channel, NodeId from, NodeId to, ByteView payload) {
  Bytes datagram;
  datagram.reserve(payload.size() + 1);
  datagram.push_back(static_cast<std::uint8_t>(channel));
  append(datagram, payload);
  transport_.send(from, to, std::move(datagram));
}

void Demux::set_handler(Channel channel, Handler handler) {
  handlers_[static_cast<std::uint8_t>(channel)] = std::move(handler);
}

void Demux::dispatch(NodeId from, NodeId to, const Bytes& datagram) {
  if (datagram.empty()) return;
  const Handler& handler = handlers_[datagram[0]];
  if (handler) {
    handler(from, to, ByteView(datagram).subspan(1));
  }
}

}  // namespace p2panon::net
