#include "net/sim_transport.hpp"

#include <stdexcept>
#include <utility>

#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace p2panon::net {

namespace {

/// Instant trace event for a vanished datagram, on the sender's causal
/// chain. Only reached behind an enabled() check.
void trace_drop(const char* cause, NodeId from, NodeId to) {
  obs::TraceArgs args;
  args.add("cause", cause)
      .add("from", static_cast<std::uint64_t>(from))
      .add("to", static_cast<std::uint64_t>(to));
  obs::Tracer::instance().instant("net", "drop", obs::current_correlation(),
                                  args);
}

/// Wire-observer metadata at the current tap point. The channel byte is
/// the demux framing prefix — link-layer headers a passive observer
/// reads legitimately; payload bytes past it are never surfaced.
LinkTapMeta tap_meta(std::uint64_t now_us, const Bytes& payload) {
  LinkTapMeta meta;
  meta.when_us = now_us;
  meta.correlation = obs::current_correlation();
  meta.protocol = payload.empty() ? 0 : payload[0];
  return meta;
}

}  // namespace

SimTransport::SimTransport(sim::Simulator& simulator,
                           const LatencyMatrix& latency,
                           LivenessOracle liveness,
                           std::size_t per_hop_overhead,
                           LinkFaultConfig faults, obs::Registry* metrics)
    : simulator_(simulator),
      latency_(latency),
      liveness_(std::move(liveness)),
      per_hop_overhead_(per_hop_overhead),
      faults_(faults),
      fault_rng_(faults.seed),
      handlers_(latency.num_nodes()),
      metrics_(metrics != nullptr ? metrics : &obs::Registry::global()),
      messages_sent_(metrics_->counter("net_messages_sent_total")),
      bytes_sent_(metrics_->counter("net_bytes_sent_total")),
      drop_sender_dead_(
          metrics_->counter("net_drops_total", {{"cause", "sender_dead"}})),
      drop_receiver_dead_(
          metrics_->counter("net_drops_total", {{"cause", "receiver_dead"}})),
      drop_link_loss_(
          metrics_->counter("net_drops_total", {{"cause", "link_loss"}})),
      drop_no_handler_(
          metrics_->counter("net_drops_total", {{"cause", "no_handler"}})),
      delay_us_(metrics_->histogram("net_delay_us")) {
  if (faults_.loss_rate < 0.0 || faults_.loss_rate >= 1.0 ||
      faults_.jitter_fraction < 0.0 || faults_.jitter_fraction >= 1.0) {
    throw std::invalid_argument("SimTransport: fault rates must be in [0, 1)");
  }
}

void SimTransport::send(NodeId from, NodeId to, Bytes payload) {
  if (from >= handlers_.size() || to >= handlers_.size()) {
    throw std::out_of_range("SimTransport::send: node id out of range");
  }
  messages_sent_->inc();
  bytes_sent_->inc(payload.size() + per_hop_overhead_);
  if (!liveness_(from)) {
    drop_sender_dead_->inc();
    if (obs::Tracer::instance().enabled()) trace_drop("sender_dead", from, to);
    return;
  }
  // The wire observer sees every datagram that leaves a live sender —
  // including ones link loss or a dead receiver will eat in flight, which
  // is exactly what makes drops observable as unmatched sends.
  if (tap_ != nullptr) {
    tap_->on_send(from, to, payload.size() + per_hop_overhead_,
                  tap_meta(simulator_.now(), payload));
  }
  // Link faults: i.i.d. datagram loss and per-packet latency jitter.
  // Guarded so the default configuration draws nothing and stays
  // bit-identical to the fault-free transport.
  if (faults_.loss_rate > 0.0 && fault_rng_.bernoulli(faults_.loss_rate)) {
    drop_link_loss_->inc();
    if (obs::Tracer::instance().enabled()) trace_drop("link_loss", from, to);
    return;
  }
  SimDuration delay = latency_.one_way(from, to);
  if (faults_.jitter_fraction > 0.0) {
    const double factor = fault_rng_.uniform(1.0 - faults_.jitter_fraction,
                                             1.0 + faults_.jitter_fraction);
    delay = static_cast<SimDuration>(static_cast<double>(delay) * factor);
  }
  delay_us_->record(static_cast<std::uint64_t>(delay));
  static const auto kDeliverEvent = obs::capacity::event_type("net.deliver");
  simulator_.schedule_after(
      delay,
      [this, from, to, data = std::move(payload)]() {
        if (!liveness_(to)) {
          drop_receiver_dead_->inc();
          if (obs::Tracer::instance().enabled()) {
            trace_drop("receiver_dead", from, to);
          }
          return;
        }
        const Handler& handler = handlers_[to];
        if (handler) {
          // Tap before dispatch: a relay forwards synchronously inside the
          // handler, so tapping here keeps "delivery into x" ahead of
          // "forward send from x" in the flow log at equal sim time.
          if (tap_ != nullptr) {
            tap_->on_deliver(from, to, data.size() + per_hop_overhead_,
                             tap_meta(simulator_.now(), data));
          }
          handler(from, to, data);
        } else {
          drop_no_handler_->inc();
          if (obs::Tracer::instance().enabled()) {
            trace_drop("no_handler", from, to);
          }
        }
      },
      kDeliverEvent);
}

void SimTransport::register_handler(NodeId node, Handler handler) {
  handlers_.at(node) = std::move(handler);
}

void SimTransport::reset_counters() {
  bytes_sent_->reset();
  messages_sent_->reset();
  drop_sender_dead_->reset();
  drop_receiver_dead_->reset();
  drop_link_loss_->reset();
  drop_no_handler_->reset();
}

}  // namespace p2panon::net
