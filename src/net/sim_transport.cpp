#include "net/sim_transport.hpp"

#include <stdexcept>
#include <utility>

#include "common/logging.hpp"

namespace p2panon::net {

SimTransport::SimTransport(sim::Simulator& simulator,
                           const LatencyMatrix& latency,
                           LivenessOracle liveness,
                           std::size_t per_hop_overhead,
                           LinkFaultConfig faults)
    : simulator_(simulator),
      latency_(latency),
      liveness_(std::move(liveness)),
      per_hop_overhead_(per_hop_overhead),
      faults_(faults),
      fault_rng_(faults.seed),
      handlers_(latency.num_nodes()) {
  if (faults_.loss_rate < 0.0 || faults_.loss_rate >= 1.0 ||
      faults_.jitter_fraction < 0.0 || faults_.jitter_fraction >= 1.0) {
    throw std::invalid_argument("SimTransport: fault rates must be in [0, 1)");
  }
}

void SimTransport::send(NodeId from, NodeId to, Bytes payload) {
  if (from >= handlers_.size() || to >= handlers_.size()) {
    throw std::out_of_range("SimTransport::send: node id out of range");
  }
  ++messages_sent_;
  bytes_sent_ += payload.size() + per_hop_overhead_;
  if (!liveness_(from)) {
    ++drops_.sender_dead;
    return;
  }
  // Link faults: i.i.d. datagram loss and per-packet latency jitter.
  // Guarded so the default configuration draws nothing and stays
  // bit-identical to the fault-free transport.
  if (faults_.loss_rate > 0.0 && fault_rng_.bernoulli(faults_.loss_rate)) {
    ++drops_.link_loss;
    return;
  }
  SimDuration delay = latency_.one_way(from, to);
  if (faults_.jitter_fraction > 0.0) {
    const double factor = fault_rng_.uniform(1.0 - faults_.jitter_fraction,
                                             1.0 + faults_.jitter_fraction);
    delay = static_cast<SimDuration>(static_cast<double>(delay) * factor);
  }
  simulator_.schedule_after(
      delay, [this, from, to, data = std::move(payload)]() {
        if (!liveness_(to)) {
          ++drops_.receiver_dead;
          return;
        }
        const Handler& handler = handlers_[to];
        if (handler) {
          handler(from, to, data);
        } else {
          ++drops_.no_handler;
        }
      });
}

void SimTransport::register_handler(NodeId node, Handler handler) {
  handlers_.at(node) = std::move(handler);
}

void SimTransport::reset_counters() {
  bytes_sent_ = 0;
  messages_sent_ = 0;
  drops_ = DropCounters{};
}

}  // namespace p2panon::net
