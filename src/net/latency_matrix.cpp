#include "net/latency_matrix.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace p2panon::net {

LatencyMatrix::LatencyMatrix(std::size_t num_nodes,
                             std::vector<SimDuration> delays)
    : n_(num_nodes), delays_(std::move(delays)) {
  if (delays_.size() != n_ * n_) {
    throw std::invalid_argument("LatencyMatrix: delays must be N*N");
  }
}

LatencyMatrix LatencyMatrix::synthetic(std::size_t num_nodes, Rng rng,
                                       SimDuration target_mean_rtt) {
  if (num_nodes == 0) {
    throw std::invalid_argument("LatencyMatrix: need at least one node");
  }
  // Coordinates on a unit square model geographic spread; the per-node
  // access delay is Pareto-distributed to capture the long tail of
  // last-mile links seen in the King measurements.
  struct Coord {
    double x, y, access;
  };
  std::vector<Coord> coords(num_nodes);
  for (auto& c : coords) {
    c.x = rng.next_double();
    c.y = rng.next_double();
    c.access = rng.pareto(2.2, 1.0) - 1.0;  // mean ~0.83, heavy tail
  }

  std::vector<double> raw(num_nodes * num_nodes, 0.0);
  double sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < num_nodes; ++a) {
    for (std::size_t b = a + 1; b < num_nodes; ++b) {
      const double dx = coords[a].x - coords[b].x;
      const double dy = coords[a].y - coords[b].y;
      const double propagation = std::sqrt(dx * dx + dy * dy);
      const double delay = propagation + 0.35 * (coords[a].access + coords[b].access);
      raw[a * num_nodes + b] = delay;
      raw[b * num_nodes + a] = delay;
      sum += 2.0 * delay;  // both one-way directions of the RTT
      ++pairs;
    }
  }

  std::vector<SimDuration> delays(num_nodes * num_nodes, 0);
  if (pairs > 0) {
    const double mean_raw_rtt = sum / static_cast<double>(pairs);
    const double scale =
        static_cast<double>(target_mean_rtt) / mean_raw_rtt;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      delays[i] = static_cast<SimDuration>(raw[i] * scale);
    }
  }
  return LatencyMatrix(num_nodes, std::move(delays));
}

SimDuration LatencyMatrix::mean_rtt() const {
  if (n_ < 2) return 0;
  long double sum = 0.0L;
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b = 0; b < n_; ++b) {
      if (a != b) sum += static_cast<long double>(delays_[a * n_ + b]) * 2.0L;
    }
  }
  const long double pairs = static_cast<long double>(n_) * (n_ - 1);
  // Each ordered pair contributes its one-way delay twice (there and back),
  // but we also counted each ordered pair once, so normalize accordingly.
  return static_cast<SimDuration>(sum / pairs);
}

std::string LatencyMatrix::serialize() const {
  std::ostringstream out;
  out << n_ << "\n";
  for (std::size_t i = 0; i < delays_.size(); ++i) {
    out << delays_[i] << (i + 1 == delays_.size() ? "\n" : " ");
  }
  return out.str();
}

LatencyMatrix LatencyMatrix::parse(const std::string& text) {
  std::istringstream in(text);
  std::size_t n = 0;
  if (!(in >> n) || n == 0) {
    throw std::invalid_argument("LatencyMatrix::parse: bad size header");
  }
  std::vector<SimDuration> delays(n * n);
  for (auto& d : delays) {
    if (!(in >> d)) {
      throw std::invalid_argument("LatencyMatrix::parse: truncated matrix");
    }
  }
  return LatencyMatrix(n, std::move(delays));
}

}  // namespace p2panon::net
