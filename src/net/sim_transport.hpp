// Simulator-backed transport.
//
// send() schedules a delivery event after the LatencyMatrix one-way delay.
// A message is dropped when the sender is already dead at send time, or the
// receiver is dead at *delivery* time — so a node that dies while a message
// is in flight loses it, exactly the failure mode churn induces.
//
// Link-failure knobs (the paper's goals cover "node/link failures"; the
// evaluation only exercises node churn, so these default off and leave
// behavior and RNG streams untouched at 0):
//   - loss_rate: each datagram is dropped i.i.d. with this probability;
//   - jitter_fraction: per-packet multiplicative latency noise, uniform in
//     [1 - j, 1 + j] around the matrix delay.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "net/latency_matrix.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"

namespace p2panon::net {

struct LinkFaultConfig {
  double loss_rate = 0.0;        // in [0, 1)
  double jitter_fraction = 0.0;  // in [0, 1)
  std::uint64_t seed = 0x10552;  // stream for loss/jitter draws
};

class SimTransport final : public Transport {
 public:
  using LivenessOracle = std::function<bool(NodeId)>;

  /// `liveness` is consulted at send and delivery time; pass the churn
  /// model's is_up. `per_hop_overhead` bytes are added to each datagram's
  /// bandwidth accounting (packet headers); 0 reproduces the paper's
  /// payload-only numbers.
  SimTransport(sim::Simulator& simulator, const LatencyMatrix& latency,
               LivenessOracle liveness, std::size_t per_hop_overhead = 0,
               LinkFaultConfig faults = {});

  void send(NodeId from, NodeId to, Bytes payload) override;
  void register_handler(NodeId node, Handler handler) override;

  std::uint64_t bytes_sent() const override { return bytes_sent_; }
  std::uint64_t messages_sent() const override { return messages_sent_; }

  /// Per-cause drop accounting: why a datagram vanished.
  struct DropCounters {
    std::uint64_t sender_dead = 0;    // sender down at send time
    std::uint64_t receiver_dead = 0;  // receiver down at delivery time
    std::uint64_t link_loss = 0;      // i.i.d. loss_rate drop
    std::uint64_t no_handler = 0;     // delivered to an unregistered node
    std::uint64_t total() const {
      return sender_dead + receiver_dead + link_loss + no_handler;
    }
  };
  const DropCounters& drop_counters() const { return drops_; }
  std::uint64_t messages_dropped() const { return drops_.total(); }

  /// Resets the bandwidth counters (e.g. after warm-up).
  void reset_counters();

 private:
  sim::Simulator& simulator_;
  const LatencyMatrix& latency_;
  LivenessOracle liveness_;
  std::size_t per_hop_overhead_;
  LinkFaultConfig faults_;
  Rng fault_rng_;
  std::vector<Handler> handlers_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
  DropCounters drops_;
};

}  // namespace p2panon::net
