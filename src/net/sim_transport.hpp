// Simulator-backed transport.
//
// send() schedules a delivery event after the LatencyMatrix one-way delay.
// A message is dropped when the sender is already dead at send time, or the
// receiver is dead at *delivery* time — so a node that dies while a message
// is in flight loses it, exactly the failure mode churn induces.
//
// Link-failure knobs (the paper's goals cover "node/link failures"; the
// evaluation only exercises node churn, so these default off and leave
// behavior and RNG streams untouched at 0):
//   - loss_rate: each datagram is dropped i.i.d. with this probability;
//   - jitter_fraction: per-packet multiplicative latency noise, uniform in
//     [1 - j, 1 + j] around the matrix delay.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "net/latency_matrix.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace p2panon::net {

struct LinkFaultConfig {
  double loss_rate = 0.0;        // in [0, 1)
  double jitter_fraction = 0.0;  // in [0, 1)
  std::uint64_t seed = 0x10552;  // stream for loss/jitter draws
};

class SimTransport final : public Transport {
 public:
  using LivenessOracle = std::function<bool(NodeId)>;

  /// `liveness` is consulted at send and delivery time; pass the churn
  /// model's is_up. `per_hop_overhead` bytes are added to each datagram's
  /// bandwidth accounting (packet headers); 0 reproduces the paper's
  /// payload-only numbers. All counters live in `metrics` (nullptr =
  /// the process-global registry) as `net_messages_sent_total`,
  /// `net_bytes_sent_total`, `net_drops_total{cause=...}` and the
  /// `net_delay_us` delivery-delay histogram — the single source of truth
  /// for per-cause drop accounting.
  SimTransport(sim::Simulator& simulator, const LatencyMatrix& latency,
               LivenessOracle liveness, std::size_t per_hop_overhead = 0,
               LinkFaultConfig faults = {}, obs::Registry* metrics = nullptr);

  void send(NodeId from, NodeId to, Bytes payload) override;
  void register_handler(NodeId node, Handler handler) override;

  std::uint64_t bytes_sent() const override { return bytes_sent_->value(); }
  std::uint64_t messages_sent() const override {
    return messages_sent_->value();
  }

  /// Per-cause drop accounting, read back from the registry series.
  std::uint64_t drops_sender_dead() const {   // sender down at send time
    return drop_sender_dead_->value();
  }
  std::uint64_t drops_receiver_dead() const {  // receiver down at delivery
    return drop_receiver_dead_->value();
  }
  std::uint64_t drops_link_loss() const {  // i.i.d. loss_rate drop
    return drop_link_loss_->value();
  }
  std::uint64_t drops_no_handler() const {  // no handler registered
    return drop_no_handler_->value();
  }
  std::uint64_t messages_dropped() const {
    return drops_sender_dead() + drops_receiver_dead() + drops_link_loss() +
           drops_no_handler();
  }

  /// The registry this transport records into.
  obs::Registry& metrics() const { return *metrics_; }

  /// Installs a passive wire observer (nullptr detaches). The default —
  /// no tap — adds zero work per datagram and keeps runs byte-identical
  /// to a tapless transport; the pointer is not owned.
  void set_tap(LinkTap* tap) { tap_ = tap; }

  /// Resets the bandwidth counters (e.g. after warm-up).
  void reset_counters();

 private:
  sim::Simulator& simulator_;
  const LatencyMatrix& latency_;
  LivenessOracle liveness_;
  std::size_t per_hop_overhead_;
  LinkFaultConfig faults_;
  Rng fault_rng_;
  std::vector<Handler> handlers_;
  obs::Registry* metrics_;
  LinkTap* tap_ = nullptr;
  obs::Counter* messages_sent_;
  obs::Counter* bytes_sent_;
  obs::Counter* drop_sender_dead_;
  obs::Counter* drop_receiver_dead_;
  obs::Counter* drop_link_loss_;
  obs::Counter* drop_no_handler_;
  obs::HdrHistogram* delay_us_;
};

}  // namespace p2panon::net
