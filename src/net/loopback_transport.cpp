#include "net/loopback_transport.hpp"

#include <stdexcept>
#include <utility>

namespace p2panon::net {

LoopbackTransport::LoopbackTransport(std::size_t num_nodes)
    : handlers_(num_nodes), up_(num_nodes, true) {}

void LoopbackTransport::send(NodeId from, NodeId to, Bytes payload) {
  if (from >= handlers_.size() || to >= handlers_.size()) {
    throw std::out_of_range("LoopbackTransport::send: node id out of range");
  }
  ++messages_sent_;
  bytes_sent_ += payload.size();
  if (!up_[from]) return;
  queue_.push_back(Pending{from, to, std::move(payload)});
}

void LoopbackTransport::register_handler(NodeId node, Handler handler) {
  handlers_.at(node) = std::move(handler);
}

void LoopbackTransport::set_up(NodeId node, bool up) {
  up_.at(node) = up;
}

bool LoopbackTransport::deliver_one() {
  if (queue_.empty()) return false;
  Pending msg = std::move(queue_.front());
  queue_.pop_front();
  if (up_[msg.to] && handlers_[msg.to]) {
    handlers_[msg.to](msg.from, msg.to, msg.payload);
  }
  return true;
}

std::size_t LoopbackTransport::deliver_all() {
  std::size_t delivered = 0;
  while (deliver_one()) ++delivered;
  return delivered;
}

}  // namespace p2panon::net
