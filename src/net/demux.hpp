// Channel demultiplexer over a Transport.
//
// Several services (gossip membership, anonymity protocols, cover traffic)
// share one datagram endpoint per node. Demux prefixes each datagram with a
// one-byte channel id and dispatches received datagrams to the channel's
// handler. It installs itself as the Transport handler for every node it is
// given.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "net/transport.hpp"

namespace p2panon::net {

enum class Channel : std::uint8_t {
  kGossip = 1,
  kAnonForward = 2,
  kAnonReverse = 3,
  kControl = 4,
  kCover = 5,
};

class Demux {
 public:
  using Handler =
      std::function<void(NodeId from, NodeId to, ByteView payload)>;

  /// Installs receive handlers for nodes [0, num_nodes) on `transport`.
  Demux(Transport& transport, std::size_t num_nodes);

  /// Sends `payload` on `channel` (prepends the channel byte).
  void send(Channel channel, NodeId from, NodeId to, ByteView payload);

  /// Registers the handler for a channel across all nodes. One handler per
  /// channel; later registrations replace earlier ones.
  void set_handler(Channel channel, Handler handler);

  Transport& transport() { return transport_; }

 private:
  void dispatch(NodeId from, NodeId to, const Bytes& datagram);

  Transport& transport_;
  std::array<Handler, 256> handlers_;
};

}  // namespace p2panon::net
