// In-process transport with synchronous-queue delivery.
//
// Messages are enqueued and drained in FIFO order by deliver_all(), so
// re-entrancy is bounded and protocol unit tests can single-step message
// exchange without a simulator. Nodes can be taken down to inject failures.
#pragma once

#include <deque>
#include <vector>

#include "net/transport.hpp"

namespace p2panon::net {

class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(std::size_t num_nodes);

  void send(NodeId from, NodeId to, Bytes payload) override;
  void register_handler(NodeId node, Handler handler) override;

  std::uint64_t bytes_sent() const override { return bytes_sent_; }
  std::uint64_t messages_sent() const override { return messages_sent_; }

  /// Marks a node dead: future sends from/to it are dropped.
  void set_up(NodeId node, bool up);
  bool is_up(NodeId node) const { return up_.at(node); }

  /// Delivers queued messages until the queue drains (messages sent during
  /// delivery are also delivered). Returns the number delivered.
  std::size_t deliver_all();

  /// Delivers at most one queued message; returns false when queue empty.
  bool deliver_one();

  std::size_t queued() const { return queue_.size(); }

 private:
  struct Pending {
    NodeId from;
    NodeId to;
    Bytes payload;
  };
  std::vector<Handler> handlers_;
  std::vector<bool> up_;
  std::deque<Pending> queue_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
};

}  // namespace p2panon::net
