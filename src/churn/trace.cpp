#include "churn/trace.hpp"

#include <sstream>
#include <stdexcept>

namespace p2panon::churn {

std::string serialize_trace(const std::vector<ChurnEvent>& events) {
  std::ostringstream out;
  for (const ChurnEvent& event : events) {
    out << event.when << " " << event.node << " " << (event.up ? 1 : 0)
        << "\n";
  }
  return out.str();
}

std::vector<ChurnEvent> parse_trace(const std::string& text) {
  std::vector<ChurnEvent> events;
  std::istringstream in(text);
  std::string line;
  SimTime previous = 0;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    ChurnEvent event;
    int up = 0;
    if (!(fields >> event.when >> event.node >> up) || (up != 0 && up != 1)) {
      throw std::invalid_argument("trace line " + std::to_string(line_number) +
                                  ": malformed");
    }
    event.up = up == 1;
    if (event.when < previous) {
      throw std::invalid_argument("trace line " + std::to_string(line_number) +
                                  ": out of order");
    }
    previous = event.when;
    events.push_back(event);
  }
  return events;
}

std::function<void(NodeId, bool, SimTime)> TraceRecorder::listener() {
  return [this](NodeId node, bool up, SimTime when) {
    events_.push_back(ChurnEvent{when, node, up});
  };
}

TraceChurn::TraceChurn(sim::Simulator& simulator, std::size_t num_nodes,
                       std::vector<ChurnEvent> events,
                       std::vector<bool> initially_up)
    : simulator_(simulator),
      events_(std::move(events)),
      up_(std::move(initially_up)),
      last_join_(num_nodes, kNeverTime) {
  if (up_.size() != num_nodes) {
    throw std::invalid_argument("TraceChurn: initial state size mismatch");
  }
  for (NodeId node = 0; node < num_nodes; ++node) {
    if (up_[node]) {
      ++up_count_;
      last_join_[node] = 0;
    }
  }
  for (const ChurnEvent& event : events_) {
    if (event.node >= num_nodes) {
      throw std::invalid_argument("TraceChurn: event node out of range");
    }
  }
}

TraceChurn TraceChurn::from_trace(sim::Simulator& simulator,
                                  std::size_t num_nodes,
                                  std::vector<ChurnEvent> events) {
  std::vector<bool> initially_up(num_nodes, true);
  std::vector<bool> seen(num_nodes, false);
  for (const ChurnEvent& event : events) {
    if (event.node < num_nodes && !seen[event.node]) {
      seen[event.node] = true;
      // First event joins => the node must have been down before it.
      initially_up[event.node] = !event.up;
    }
  }
  return TraceChurn(simulator, num_nodes, std::move(events),
                    std::move(initially_up));
}

void TraceChurn::start() {
  if (started_) throw std::logic_error("TraceChurn::start called twice");
  started_ = true;
  static const auto kTraceEvent = obs::capacity::event_type("churn.trace");
  for (const ChurnEvent& event : events_) {
    simulator_.schedule_at(
        event.when, [this, event] { apply(event); }, kTraceEvent);
  }
}

void TraceChurn::subscribe(ChurnListener listener) {
  listeners_.push_back(std::move(listener));
}

void TraceChurn::apply(const ChurnEvent& event) {
  if (up_[event.node] == event.up) return;  // idempotent on bad traces
  up_[event.node] = event.up;
  if (event.up) {
    ++up_count_;
    last_join_[event.node] = event.when;
  } else {
    --up_count_;
  }
  for (const auto& listener : listeners_) {
    listener(event.node, event.up, event.when);
  }
}

double TraceChurn::alive_seconds(NodeId node, SimTime now) const {
  if (!up_[node] || last_join_[node] == kNeverTime) return 0.0;
  return to_seconds(now - last_join_[node]);
}

}  // namespace p2panon::churn
