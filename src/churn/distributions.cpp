#include "churn/distributions.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/strings.hpp"

namespace p2panon::churn {

// --- Pareto ------------------------------------------------------------------

ParetoLifetime::ParetoLifetime(double shape, double scale)
    : shape_(shape), scale_(scale) {
  if (shape <= 0 || scale <= 0) {
    throw std::invalid_argument("ParetoLifetime: shape and scale must be > 0");
  }
}

ParetoLifetime ParetoLifetime::with_median(double median_seconds,
                                           double shape) {
  // median = scale * 2^{1/shape}  =>  scale = median / 2^{1/shape}.
  return ParetoLifetime(shape, median_seconds / std::pow(2.0, 1.0 / shape));
}

double ParetoLifetime::sample(Rng& rng) const {
  return rng.pareto(shape_, scale_);
}

double ParetoLifetime::cdf(double t) const {
  if (t <= scale_) return 0.0;
  return 1.0 - std::pow(scale_ / t, shape_);
}

double ParetoLifetime::median() const {
  return scale_ * std::pow(2.0, 1.0 / shape_);
}

double ParetoLifetime::mean() const {
  if (shape_ <= 1.0) return std::numeric_limits<double>::infinity();
  return shape_ * scale_ / (shape_ - 1.0);
}

std::string ParetoLifetime::name() const {
  std::ostringstream out;
  out << "pareto(shape=" << shape_ << ",scale=" << scale_ << "s)";
  return out.str();
}

std::unique_ptr<LifetimeDistribution> ParetoLifetime::clone() const {
  return std::make_unique<ParetoLifetime>(*this);
}

double ParetoLifetime::conditional_survival(double alive_seconds,
                                            double since_seconds) const {
  if (alive_seconds <= 0) return 0.0;
  if (since_seconds <= 0) return 1.0;
  return std::pow(alive_seconds / (alive_seconds + since_seconds), shape_);
}

// --- Exponential --------------------------------------------------------------

ExponentialLifetime::ExponentialLifetime(double mean_seconds)
    : mean_(mean_seconds) {
  if (mean_seconds <= 0) {
    throw std::invalid_argument("ExponentialLifetime: mean must be > 0");
  }
}

double ExponentialLifetime::sample(Rng& rng) const {
  return rng.exponential(mean_);
}

double ExponentialLifetime::cdf(double t) const {
  if (t <= 0) return 0.0;
  return 1.0 - std::exp(-t / mean_);
}

double ExponentialLifetime::median() const { return mean_ * std::log(2.0); }

double ExponentialLifetime::mean() const { return mean_; }

std::string ExponentialLifetime::name() const {
  std::ostringstream out;
  out << "exponential(mean=" << mean_ << "s)";
  return out.str();
}

std::unique_ptr<LifetimeDistribution> ExponentialLifetime::clone() const {
  return std::make_unique<ExponentialLifetime>(*this);
}

// --- Uniform -------------------------------------------------------------------

UniformLifetime::UniformLifetime(double lo_seconds, double hi_seconds)
    : lo_(lo_seconds), hi_(hi_seconds) {
  if (!(hi_seconds > lo_seconds) || lo_seconds < 0) {
    throw std::invalid_argument("UniformLifetime: need 0 <= lo < hi");
  }
}

UniformLifetime UniformLifetime::paper_default() {
  // "chosen uniformly at random between 6 minutes and nearly two hours,
  // with an average of 1 hour": [360 s, 6840 s] has mean 3600 s.
  return UniformLifetime(360.0, 6840.0);
}

double UniformLifetime::sample(Rng& rng) const {
  return rng.uniform(lo_, hi_);
}

double UniformLifetime::cdf(double t) const {
  if (t <= lo_) return 0.0;
  if (t >= hi_) return 1.0;
  return (t - lo_) / (hi_ - lo_);
}

double UniformLifetime::median() const { return (lo_ + hi_) / 2.0; }

double UniformLifetime::mean() const { return (lo_ + hi_) / 2.0; }

std::string UniformLifetime::name() const {
  std::ostringstream out;
  out << "uniform(" << lo_ << "s," << hi_ << "s)";
  return out.str();
}

std::unique_ptr<LifetimeDistribution> UniformLifetime::clone() const {
  return std::make_unique<UniformLifetime>(*this);
}

// --- Weibull --------------------------------------------------------------------

WeibullLifetime::WeibullLifetime(double shape, double scale_seconds)
    : shape_(shape), scale_(scale_seconds) {
  if (shape <= 0 || scale_seconds <= 0) {
    throw std::invalid_argument("WeibullLifetime: shape and scale must be > 0");
  }
}

double WeibullLifetime::sample(Rng& rng) const {
  // Inverse CDF: scale * (-ln U)^{1/shape}.
  return scale_ * std::pow(-std::log(rng.next_double_open()), 1.0 / shape_);
}

double WeibullLifetime::cdf(double t) const {
  if (t <= 0) return 0.0;
  return 1.0 - std::exp(-std::pow(t / scale_, shape_));
}

double WeibullLifetime::median() const {
  return scale_ * std::pow(std::log(2.0), 1.0 / shape_);
}

double WeibullLifetime::mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

std::string WeibullLifetime::name() const {
  std::ostringstream out;
  out << "weibull(shape=" << shape_ << ",scale=" << scale_ << "s)";
  return out.str();
}

std::unique_ptr<LifetimeDistribution> WeibullLifetime::clone() const {
  return std::make_unique<WeibullLifetime>(*this);
}

// --- Parser ----------------------------------------------------------------------

namespace {
std::map<std::string, double> parse_params(const std::string& body) {
  std::map<std::string, double> params;
  if (body.empty()) return params;
  for (const auto& kv : split(body, ',')) {
    const auto parts = split(kv, '=');
    if (parts.size() != 2) {
      throw std::invalid_argument("bad distribution parameter: " + kv);
    }
    params[std::string(trim(parts[0]))] = std::stod(parts[1]);
  }
  return params;
}

double require(const std::map<std::string, double>& params,
               const std::string& key) {
  const auto it = params.find(key);
  if (it == params.end()) {
    throw std::invalid_argument("missing distribution parameter: " + key);
  }
  return it->second;
}
}  // namespace

std::unique_ptr<LifetimeDistribution> parse_distribution(
    const std::string& spec) {
  const std::size_t colon = spec.find(':');
  const std::string kind =
      to_lower(colon == std::string::npos ? spec : spec.substr(0, colon));
  const auto params =
      parse_params(colon == std::string::npos ? "" : spec.substr(colon + 1));

  if (kind == "pareto") {
    if (params.count("median")) {
      const double shape = params.count("shape") ? params.at("shape") : 1.0;
      return std::make_unique<ParetoLifetime>(
          ParetoLifetime::with_median(require(params, "median"), shape));
    }
    return std::make_unique<ParetoLifetime>(require(params, "shape"),
                                            require(params, "scale"));
  }
  if (kind == "exp" || kind == "exponential") {
    return std::make_unique<ExponentialLifetime>(require(params, "mean"));
  }
  if (kind == "uniform") {
    if (params.empty()) {
      return std::make_unique<UniformLifetime>(UniformLifetime::paper_default());
    }
    return std::make_unique<UniformLifetime>(require(params, "lo"),
                                             require(params, "hi"));
  }
  if (kind == "weibull") {
    return std::make_unique<WeibullLifetime>(require(params, "shape"),
                                             require(params, "scale"));
  }
  throw std::invalid_argument("unknown distribution: " + spec);
}

}  // namespace p2panon::churn
