// Churn model: alternating up/down sessions per node.
//
// Mirrors the paper's setup ("each node alternately leaves and rejoins the
// network; the interval between successive events follows a Pareto
// distribution"). Up and down intervals are drawn from the same
// distribution, giving ~50 % steady-state availability under symmetric
// distributions. Individual nodes can be pinned up (the paper pins the
// initiator and responder in Table 2).
//
// The model is the ground truth for node liveness: the transport asks it
// whether endpoints are alive, and the membership layer receives join/leave
// notifications from it (which it then disseminates by gossip — protocols
// never read the oracle directly).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "churn/distributions.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace p2panon::churn {

class ChurnModel {
 public:
  using ChurnListener = std::function<void(NodeId node, bool up, SimTime when)>;

  /// `initial_up_fraction` nodes start alive; the rest join later. The
  /// paper's experiments warm up for one simulated hour, so transients from
  /// the initial state wash out.
  ChurnModel(sim::Simulator& simulator, std::size_t num_nodes,
             const LifetimeDistribution& session_dist, Rng rng,
             double initial_up_fraction = 0.5);

  ChurnModel(const ChurnModel&) = delete;
  ChurnModel& operator=(const ChurnModel&) = delete;

  /// Schedules the first transition for every node. Call once before
  /// Simulator::run*.
  void start();

  /// Keeps a node up for the whole simulation (cancels pending transitions).
  void pin_up(NodeId node);

  /// Registers for join/leave callbacks; listeners fire in registration
  /// order at the event time.
  void subscribe(ChurnListener listener);

  bool is_up(NodeId node) const { return nodes_[node].up; }
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t up_count() const { return up_count_; }

  /// Time of the node's most recent join (kNeverTime if it never joined).
  SimTime last_join_time(NodeId node) const { return nodes_[node].last_join; }

  /// Ground-truth seconds the node has been up, 0 if down. The membership
  /// layer estimates this via gossip; tests compare against this oracle.
  double alive_seconds(NodeId node, SimTime now) const;

  /// Fraction of node-time spent up over [0, now] (availability).
  double measured_availability(SimTime now) const;

  /// Total join events so far (diagnostics).
  std::uint64_t total_transitions() const { return transitions_; }

 private:
  struct NodeState {
    bool up = false;
    bool pinned = false;
    SimTime last_join = kNeverTime;
    SimTime up_accumulated = 0;  // total up-time excluding the open session
    sim::EventId next_transition = sim::kInvalidEventId;
  };

  void schedule_transition(NodeId node);
  void transition(NodeId node);
  void set_state(NodeId node, bool up);

  sim::Simulator& simulator_;
  std::unique_ptr<LifetimeDistribution> dist_;
  Rng rng_;
  std::vector<NodeState> nodes_;
  std::vector<ChurnListener> listeners_;
  std::size_t up_count_ = 0;
  std::uint64_t transitions_ = 0;
  bool started_ = false;
};

}  // namespace p2panon::churn
