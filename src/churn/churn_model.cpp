#include "churn/churn_model.hpp"

#include <stdexcept>

#include "common/logging.hpp"

namespace p2panon::churn {

ChurnModel::ChurnModel(sim::Simulator& simulator, std::size_t num_nodes,
                       const LifetimeDistribution& session_dist, Rng rng,
                       double initial_up_fraction)
    : simulator_(simulator),
      dist_(session_dist.clone()),
      rng_(rng),
      nodes_(num_nodes) {
  if (num_nodes == 0) {
    throw std::invalid_argument("ChurnModel: need at least one node");
  }
  for (NodeId node = 0; node < nodes_.size(); ++node) {
    if (rng_.bernoulli(initial_up_fraction)) {
      nodes_[node].up = true;
      nodes_[node].last_join = 0;
      ++up_count_;
    }
  }
}

void ChurnModel::start() {
  if (started_) {
    throw std::logic_error("ChurnModel::start called twice");
  }
  started_ = true;
  for (NodeId node = 0; node < nodes_.size(); ++node) {
    if (!nodes_[node].pinned) schedule_transition(node);
  }
}

void ChurnModel::pin_up(NodeId node) {
  NodeState& state = nodes_.at(node);
  state.pinned = true;
  if (state.next_transition != sim::kInvalidEventId) {
    simulator_.cancel(state.next_transition);
    state.next_transition = sim::kInvalidEventId;
  }
  if (!state.up) set_state(node, true);
}

void ChurnModel::subscribe(ChurnListener listener) {
  listeners_.push_back(std::move(listener));
}

void ChurnModel::schedule_transition(NodeId node) {
  const double session_seconds = dist_->sample(rng_);
  const SimDuration delay = from_seconds(session_seconds);
  static const auto kTransitionEvent =
      obs::capacity::event_type("churn.transition");
  nodes_[node].next_transition = simulator_.schedule_after(
      delay, [this, node] { transition(node); }, kTransitionEvent);
}

void ChurnModel::transition(NodeId node) {
  NodeState& state = nodes_[node];
  state.next_transition = sim::kInvalidEventId;
  set_state(node, !state.up);
  schedule_transition(node);
}

void ChurnModel::set_state(NodeId node, bool up) {
  NodeState& state = nodes_[node];
  const SimTime now = simulator_.now();
  state.up = up;
  if (up) {
    state.last_join = now;
    ++up_count_;
  } else {
    if (state.last_join != kNeverTime) {
      state.up_accumulated += now - state.last_join;
    }
    --up_count_;
  }
  ++transitions_;
  LOG_TRACE << "churn: node " << node << (up ? " join" : " leave") << " at "
            << to_seconds(now) << "s";
  for (const auto& listener : listeners_) listener(node, up, now);
}

double ChurnModel::alive_seconds(NodeId node, SimTime now) const {
  const NodeState& state = nodes_[node];
  if (!state.up || state.last_join == kNeverTime) return 0.0;
  return to_seconds(now - state.last_join);
}

double ChurnModel::measured_availability(SimTime now) const {
  if (now == 0) return 0.0;
  double up_time = 0.0;
  for (NodeId node = 0; node < nodes_.size(); ++node) {
    const NodeState& state = nodes_[node];
    up_time += to_seconds(state.up_accumulated);
    if (state.up && state.last_join != kNeverTime) {
      up_time += to_seconds(now - state.last_join);
    }
  }
  return up_time / (to_seconds(now) * static_cast<double>(nodes_.size()));
}

}  // namespace p2panon::churn
