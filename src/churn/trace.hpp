// Churn trace record / replay.
//
// Records every join/leave from a live ChurnModel into a text trace, and
// replays a trace as the churn schedule of a later simulation. Uses:
//   - bit-identical churn across protocol configurations beyond what
//     shared seeds give (e.g. after code changes that shift RNG draws);
//   - importing external measured session traces (one "time_us node_id
//     up" triple per line) in place of the synthetic distributions.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace p2panon::churn {

struct ChurnEvent {
  SimTime when = 0;
  NodeId node = kInvalidNode;
  bool up = false;

  bool operator==(const ChurnEvent&) const = default;
};

/// Text form: "<microseconds> <node> <0|1>\n" per event, sorted by time.
std::string serialize_trace(const std::vector<ChurnEvent>& events);

/// Parses a trace; throws std::invalid_argument on malformed lines or
/// out-of-order timestamps.
std::vector<ChurnEvent> parse_trace(const std::string& text);

/// Subscribes to a ChurnModel-compatible source and accumulates events.
class TraceRecorder {
 public:
  /// Returns the listener to pass to ChurnModel::subscribe.
  std::function<void(NodeId, bool, SimTime)> listener();

  const std::vector<ChurnEvent>& events() const { return events_; }
  std::string serialize() const { return serialize_trace(events_); }

 private:
  std::vector<ChurnEvent> events_;
};

/// Replays a trace: schedules every event on the simulator and exposes the
/// same liveness/notification surface as ChurnModel, so transports and
/// membership layers work unchanged.
class TraceChurn {
 public:
  using ChurnListener = std::function<void(NodeId, bool, SimTime)>;

  /// `initially_up[i]` gives node i's state at t = 0 (events then flip
  /// it). Events must be sorted by time.
  TraceChurn(sim::Simulator& simulator, std::size_t num_nodes,
             std::vector<ChurnEvent> events,
             std::vector<bool> initially_up);

  /// Builds the initial state by assuming everyone whose first event is a
  /// leave starts up, and everyone whose first event is a join starts
  /// down (nodes with no events start up).
  static TraceChurn from_trace(sim::Simulator& simulator,
                               std::size_t num_nodes,
                               std::vector<ChurnEvent> events);

  void start();
  void subscribe(ChurnListener listener);

  bool is_up(NodeId node) const { return up_[node]; }
  std::size_t num_nodes() const { return up_.size(); }
  std::size_t up_count() const { return up_count_; }
  double alive_seconds(NodeId node, SimTime now) const;

 private:
  void apply(const ChurnEvent& event);

  sim::Simulator& simulator_;
  std::vector<ChurnEvent> events_;
  std::vector<bool> up_;
  std::vector<SimTime> last_join_;
  std::vector<ChurnListener> listeners_;
  std::size_t up_count_ = 0;
  bool started_ = false;
};

}  // namespace p2panon::churn
