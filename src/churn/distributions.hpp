// Node-lifetime (session-time) distributions.
//
// The paper's churn model draws the interval between successive join/leave
// events from one of these distributions:
//   - Pareto(shape alpha, scale beta): heavy-tailed; the default churn uses
//     alpha = 1, beta = 1800 s (median session 1 h). Figure 1 uses
//     alpha = 0.83, beta = 1560 s to match the measured Gnutella trace.
//   - Exponential(mean): memoryless baseline for Table 4.
//   - Uniform(lo, hi): "anti-Pareto" baseline for Table 4 — old nodes are
//     *more* likely to die soon.
// All times are in seconds (double); callers convert to SimDuration.
#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"

namespace p2panon::churn {

class LifetimeDistribution {
 public:
  virtual ~LifetimeDistribution() = default;

  /// Draws a session length in seconds (> 0).
  virtual double sample(Rng& rng) const = 0;

  /// P(lifetime <= t), t in seconds.
  virtual double cdf(double t) const = 0;

  /// Median session length in seconds.
  virtual double median() const = 0;

  /// Mean session length in seconds; +inf for Pareto with shape <= 1.
  virtual double mean() const = 0;

  virtual std::string name() const = 0;

  virtual std::unique_ptr<LifetimeDistribution> clone() const = 0;
};

/// Classic Pareto: support [scale, inf), CDF 1 - (scale/t)^shape.
class ParetoLifetime final : public LifetimeDistribution {
 public:
  ParetoLifetime(double shape, double scale);

  /// Convenience: the shape-1 Pareto whose median is `median_seconds`
  /// (scale = median / 2^{1/shape}).
  static ParetoLifetime with_median(double median_seconds, double shape = 1.0);

  double sample(Rng& rng) const override;
  double cdf(double t) const override;
  double median() const override;
  double mean() const override;
  std::string name() const override;
  std::unique_ptr<LifetimeDistribution> clone() const override;

  double shape() const { return shape_; }
  double scale() const { return scale_; }

  /// Conditional survival used by the liveness predictor:
  /// P(lifetime > a + s | lifetime > a) = (a / (a + s))^shape.
  double conditional_survival(double alive_seconds,
                              double since_seconds) const;

 private:
  double shape_;
  double scale_;
};

class ExponentialLifetime final : public LifetimeDistribution {
 public:
  explicit ExponentialLifetime(double mean_seconds);

  double sample(Rng& rng) const override;
  double cdf(double t) const override;
  double median() const override;
  double mean() const override;
  std::string name() const override;
  std::unique_ptr<LifetimeDistribution> clone() const override;

 private:
  double mean_;
};

class UniformLifetime final : public LifetimeDistribution {
 public:
  UniformLifetime(double lo_seconds, double hi_seconds);

  /// The paper's Table 4 uniform: 6 min .. (2h - 6 min), mean 1 h.
  static UniformLifetime paper_default();

  double sample(Rng& rng) const override;
  double cdf(double t) const override;
  double median() const override;
  double mean() const override;
  std::string name() const override;
  std::unique_ptr<LifetimeDistribution> clone() const override;

 private:
  double lo_;
  double hi_;
};

/// Weibull lifetimes; included beyond the paper for sensitivity studies
/// (shape < 1 is heavy-tailed-ish, shape > 1 ages like the uniform).
class WeibullLifetime final : public LifetimeDistribution {
 public:
  WeibullLifetime(double shape, double scale_seconds);

  double sample(Rng& rng) const override;
  double cdf(double t) const override;
  double median() const override;
  double mean() const override;
  std::string name() const override;
  std::unique_ptr<LifetimeDistribution> clone() const override;

 private:
  double shape_;
  double scale_;
};

/// Parses "pareto:median=3600", "pareto:shape=0.83,scale=1560",
/// "exp:mean=3600", "uniform:lo=360,hi=6840", "weibull:shape=0.5,scale=1800"
/// (seconds). Throws std::invalid_argument on unknown forms.
std::unique_ptr<LifetimeDistribution> parse_distribution(
    const std::string& spec);

}  // namespace p2panon::churn
