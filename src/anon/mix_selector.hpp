// Mix (relay) selection (paper §4.9 "Biased Mix Choice").
//
// Selects the k * L distinct relay nodes for a path set from the
// initiator's NodeCache:
//   - Random: uniform over all known nodes, ignoring liveness entirely —
//     how the paper characterizes existing mix-based protocols.
//   - Biased: the nodes with the highest Eq. 3 liveness predictor.
// The initiator and responder are always excluded, and the k paths are
// node-disjoint by construction.
//
// Corruption resilience: when the cache has suspicion tracking enabled
// (membership::SuspicionConfig), quarantined nodes are excluded from both
// modes and biased choice scores candidates q / (1 + penalty * suspicion),
// routing around relays that corrupted or stalled traffic the same way the
// paper routes around dead ones. Off by default — selection then draws and
// ranks exactly as the seed did.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "membership/node_cache.hpp"

namespace p2panon::anon {

enum class MixChoice { kRandom, kBiased };

const char* to_string(MixChoice choice);

/// Staleness-aware degradation policy (control-plane resilience, DESIGN
/// §9). Biased choice is only as good as the liveness data behind it: after
/// a gossip blackout the Eq. 3 ranking is computed over fossils, and
/// confidently picking the "longest-lived" node from a stale cache is
/// worse than admitting ignorance. When the fraction of known-alive
/// records older than `stale_after` exceeds `degrade_fraction`, biased
/// selection falls back to the random sampler for that decision — and
/// recovers the bias automatically as anti-entropy repair freshens the
/// cache back under the threshold. Default OFF: selection is then
/// byte-identical to the seed.
struct StalenessPolicy {
  bool enabled = false;
  SimDuration stale_after = 2 * kMinute;
  double degrade_fraction = 0.5;
};

class MixSelector {
 public:
  MixSelector(MixChoice choice, Rng rng) : choice_(choice), rng_(rng) {}
  MixSelector(MixChoice choice, Rng rng, StalenessPolicy staleness)
      : choice_(choice), rng_(rng), staleness_(staleness) {}

  /// Picks `paths * path_length` distinct relays and splits them into
  /// `paths` disjoint relay lists of length `path_length`. Returns nullopt
  /// if the cache has too few eligible nodes.
  ///
  /// For biased choice the best nodes go breadth-first across paths (path
  /// j gets the (j)th, (k+j)th, ... best), so path quality is as even as a
  /// top-q selection allows.
  std::optional<std::vector<std::vector<NodeId>>> select_paths(
      const membership::NodeCache& cache, std::size_t paths,
      std::size_t path_length, SimTime now, NodeId initiator,
      NodeId responder,
      const std::vector<NodeId>& extra_exclude = {});

  MixChoice choice() const { return choice_; }
  const StalenessPolicy& staleness() const { return staleness_; }

  /// How many biased selections fell back to random because the cache was
  /// stale, and how many biased selections ran in total.
  std::uint64_t stale_fallbacks() const { return stale_fallbacks_; }
  std::uint64_t biased_selects() const { return biased_selects_; }

 private:
  MixChoice choice_;
  Rng rng_;
  StalenessPolicy staleness_;
  std::uint64_t stale_fallbacks_ = 0;
  std::uint64_t biased_selects_ = 0;
};

}  // namespace p2panon::anon
