// Mix (relay) selection (paper §4.9 "Biased Mix Choice").
//
// Selects the k * L distinct relay nodes for a path set from the
// initiator's NodeCache:
//   - Random: uniform over all known nodes, ignoring liveness entirely —
//     how the paper characterizes existing mix-based protocols.
//   - Biased: the nodes with the highest Eq. 3 liveness predictor.
// The initiator and responder are always excluded, and the k paths are
// node-disjoint by construction.
//
// Corruption resilience: when the cache has suspicion tracking enabled
// (membership::SuspicionConfig), quarantined nodes are excluded from both
// modes and biased choice scores candidates q / (1 + penalty * suspicion),
// routing around relays that corrupted or stalled traffic the same way the
// paper routes around dead ones. Off by default — selection then draws and
// ranks exactly as the seed did.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "membership/node_cache.hpp"

namespace p2panon::anon {

enum class MixChoice { kRandom, kBiased };

const char* to_string(MixChoice choice);

class MixSelector {
 public:
  MixSelector(MixChoice choice, Rng rng) : choice_(choice), rng_(rng) {}

  /// Picks `paths * path_length` distinct relays and splits them into
  /// `paths` disjoint relay lists of length `path_length`. Returns nullopt
  /// if the cache has too few eligible nodes.
  ///
  /// For biased choice the best nodes go breadth-first across paths (path
  /// j gets the (j)th, (k+j)th, ... best), so path quality is as even as a
  /// top-q selection allows.
  std::optional<std::vector<std::vector<NodeId>>> select_paths(
      const membership::NodeCache& cache, std::size_t paths,
      std::size_t path_length, SimTime now, NodeId initiator,
      NodeId responder,
      const std::vector<NodeId>& extra_exclude = {});

  MixChoice choice() const { return choice_; }

 private:
  MixChoice choice_;
  Rng rng_;
};

}  // namespace p2panon::anon
