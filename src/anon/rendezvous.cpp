#include "anon/rendezvous.hpp"

namespace p2panon::anon {

Bytes serialize_frame(const RendezvousFrame& frame) {
  Bytes out;
  out.reserve(17 + frame.data.size());
  out.push_back(static_cast<std::uint8_t>(frame.kind));
  put_u64be(out, frame.service);
  put_u64be(out, frame.conversation);
  append(out, frame.data);
  return out;
}

std::optional<RendezvousFrame> parse_frame(ByteView payload) {
  if (payload.size() < 17) return std::nullopt;
  const std::uint8_t kind = payload[0];
  if (kind < 1 || kind > 5) return std::nullopt;
  RendezvousFrame frame;
  frame.kind = static_cast<RendezvousFrame::Kind>(kind);
  frame.service = get_u64be(payload, 1);
  frame.conversation = get_u64be(payload, 9);
  const ByteView data = payload.subspan(17);
  frame.data.assign(data.begin(), data.end());
  return frame;
}

// --- host -----------------------------------------------------------------------

bool RendezvousHost::on_message(const ReceivedMessage& message) {
  if (message.responder != node_) return false;
  const auto frame = parse_frame(message.data);
  if (!frame.has_value()) return false;

  switch (frame->kind) {
    case RendezvousFrame::Kind::kRegister: {
      // (Re)bind the service to this registration's reverse-path handle.
      services_[frame->service] =
          Registration{message.message_id};
      return true;
    }
    case RendezvousFrame::Kind::kCall: {
      const auto it = services_.find(frame->service);
      if (it == services_.end()) return true;  // unknown service: drop
      conversations_[frame->conversation] =
          Conversation{message.message_id};
      RendezvousFrame forwarded;
      forwarded.kind = RendezvousFrame::Kind::kForwardedCall;
      forwarded.service = frame->service;
      forwarded.conversation = frame->conversation;
      forwarded.data = frame->data;
      router_.send_response(node_, it->second.registration_message,
                            serialize_frame(forwarded));
      return true;
    }
    case RendezvousFrame::Kind::kReply: {
      const auto it = conversations_.find(frame->conversation);
      if (it == conversations_.end()) return true;
      RendezvousFrame forwarded;
      forwarded.kind = RendezvousFrame::Kind::kForwardedReply;
      forwarded.conversation = frame->conversation;
      forwarded.data = frame->data;
      router_.send_response(node_, it->second.call_message,
                            serialize_frame(forwarded));
      return true;
    }
    default:
      return false;  // forwarded frames never arrive as forward messages
  }
}

// --- service --------------------------------------------------------------------

AnonymousService::AnonymousService(AnonRouter& router, Session& session,
                                   ServiceId service,
                                   SimDuration reregister_interval)
    : router_(router), session_(session), service_(service) {
  session_.set_response_handler([this](MessageId, Bytes data) {
    const auto frame = parse_frame(data);
    if (!frame.has_value() ||
        frame->kind != RendezvousFrame::Kind::kForwardedCall) {
      return;
    }
    if (call_handler_) call_handler_(frame->conversation, frame->data);
  });
  reregister_ = std::make_unique<sim::PeriodicTask>(
      router_.simulator(), reregister_interval, [this] { register_now(); });
}

void AnonymousService::start(std::function<void(bool)> ready) {
  session_.construct([this, ready = std::move(ready)](bool ok, std::size_t) {
    if (ok) {
      register_now();
      reregister_->start();
    }
    ready(ok);
  });
}

void AnonymousService::register_now() {
  RendezvousFrame frame;
  frame.kind = RendezvousFrame::Kind::kRegister;
  frame.service = service_;
  session_.send_message(serialize_frame(frame));
}

void AnonymousService::reply(ConversationId conversation, ByteView data) {
  RendezvousFrame frame;
  frame.kind = RendezvousFrame::Kind::kReply;
  frame.conversation = conversation;
  frame.data.assign(data.begin(), data.end());
  session_.send_message(serialize_frame(frame));
}

// --- client ---------------------------------------------------------------------

AnonymousClient::AnonymousClient(Session& session, Rng rng)
    : session_(session), rng_(rng) {
  session_.set_response_handler([this](MessageId, Bytes data) {
    const auto frame = parse_frame(data);
    if (!frame.has_value() ||
        frame->kind != RendezvousFrame::Kind::kForwardedReply) {
      return;
    }
    if (reply_handler_) reply_handler_(frame->conversation, frame->data);
  });
}

void AnonymousClient::start(std::function<void(bool)> ready) {
  session_.construct(
      [ready = std::move(ready)](bool ok, std::size_t) { ready(ok); });
}

ConversationId AnonymousClient::call(ServiceId service, ByteView data) {
  ConversationId conversation;
  do {
    conversation = rng_.next_u64();
  } while (conversation == 0);
  RendezvousFrame frame;
  frame.kind = RendezvousFrame::Kind::kCall;
  frame.service = service;
  frame.conversation = conversation;
  frame.data.assign(data.begin(), data.end());
  if (session_.send_message(serialize_frame(frame)) == 0) return 0;
  return conversation;
}

}  // namespace p2panon::anon
