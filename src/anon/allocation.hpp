// Allocation of erasure-coded message segments among paths (paper §4.7,
// plus the weighted scheme from the paper's future work).
//
// SimEra's even allocation (the paper's only evaluated scheme) requires k
// to be a multiple of r = n/m and puts n/k segments on each path; losing
// any k(1 - 1/r) paths still leaves >= m segments. The weighted scheme
// allocates more segments to paths with higher stability scores while
// never putting more than n/k + spread segments on one path (capping how
// much one path failure can hurt).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace p2panon::anon {

/// Erasure parameterization for a protocol run: n segments (need m) over k
/// disjoint paths.
struct ErasureParams {
  std::size_t m = 1;  // segments needed
  std::size_t n = 1;  // segments produced
  std::size_t k = 1;  // paths

  double replication_factor() const {
    return static_cast<double>(n) / static_cast<double>(m);
  }
  std::size_t segments_per_path() const { return n / k; }
  /// Paths whose simultaneous failure the even allocation tolerates.
  std::size_t tolerated_path_failures() const { return k - min_paths(); }
  /// Minimum surviving paths for reconstruction: ceil(m / (n/k)).
  std::size_t min_paths() const {
    const std::size_t per = segments_per_path();
    return (m + per - 1) / per;
  }

  /// The paper's SimEra(k, r): one segment of size |M| * r / k per path
  /// (m = k / r, n = k). Requires k % r == 0.
  static ErasureParams simera(std::size_t k, std::size_t r);
  /// SimRep(r): r full copies over k = r paths (m = 1, n = r).
  static ErasureParams simrep(std::size_t r);
  /// CurMix: single path, single copy.
  static ErasureParams curmix();

  /// Validates n % k == 0, m <= n, k >= 1; throws std::invalid_argument.
  void validate() const;
};

/// segment index -> path index assignments.
using Allocation = std::vector<std::size_t>;

/// Even allocation: segment s goes to path s % k (round-robin, n/k each).
Allocation allocate_even(const ErasureParams& params);

/// Weighted allocation (future-work extension): distributes the n segments
/// proportionally to `path_scores` (e.g. mean liveness predictor of the
/// path's relays), but never more than n/k + `spread` on one path and at
/// least one segment fewer... see implementation notes. Scores must be
/// non-negative; all-zero scores degrade to even allocation.
Allocation allocate_weighted(const ErasureParams& params,
                             const std::vector<double>& path_scores,
                             std::size_t spread = 1);

/// Given which paths survived, how many segments arrive under `alloc`?
std::size_t segments_delivered(const Allocation& alloc,
                               const std::vector<bool>& path_alive);

}  // namespace p2panon::anon
