// Mutual anonymity via rendezvous (paper §3: "responder anonymity and
// mutual anonymity can be easily achieved by extending our design, i.e.,
// using an additional level of redirection").
//
// Composition of the existing primitives — nothing new on the wire below
// the application payloads:
//
//   service S (anonymous)          rendezvous node R          client C (anonymous)
//   Session(S -> R) ---REGISTER(service id)--->  host table
//                                  host <---CALL(service id, conv, data)--- Session(C -> R)
//   response path <--forwarded call-- host
//   Session(S -> R) ---REPLY(conv, data)---> host --response path--> C
//
// R learns neither S's nor C's identity (both sit behind their own onion
// paths); S and C never learn each other. The host pushes forwarded calls
// and replies down the registration/call reverse paths using the router's
// multi-response mechanism; the service re-registers periodically because
// responder-side reassembly state (its return path handle) has a TTL.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "anon/session.hpp"

namespace p2panon::anon {

using ServiceId = std::uint64_t;
using ConversationId = std::uint64_t;

/// Application-level frames carried inside ordinary anonymous messages.
struct RendezvousFrame {
  enum class Kind : std::uint8_t {
    kRegister = 1,       // service -> host
    kCall = 2,           // client -> host
    kForwardedCall = 3,  // host -> service (as response)
    kReply = 4,          // service -> host
    kForwardedReply = 5, // host -> client (as response)
  };
  Kind kind = Kind::kRegister;
  ServiceId service = 0;
  ConversationId conversation = 0;
  Bytes data;
};

Bytes serialize_frame(const RendezvousFrame& frame);
std::optional<RendezvousFrame> parse_frame(ByteView payload);

/// The rendezvous host: application logic running at node R. Plug its
/// on_message into the router's message handler (directly or via a
/// dispatcher) for messages addressed to R.
class RendezvousHost {
 public:
  explicit RendezvousHost(AnonRouter& router, NodeId host_node)
      : router_(router), node_(host_node) {}

  /// Feeds a reconstructed anonymous message to the host. Returns true if
  /// it was a rendezvous frame handled here.
  bool on_message(const ReceivedMessage& message);

  std::size_t registered_services() const { return services_.size(); }
  std::size_t open_conversations() const { return conversations_.size(); }

 private:
  struct Registration {
    MessageId registration_message = 0;  // reverse-path handle to S
  };
  struct Conversation {
    MessageId call_message = 0;  // reverse-path handle to C
  };

  AnonRouter& router_;
  NodeId node_;
  std::unordered_map<ServiceId, Registration> services_;
  std::unordered_map<ConversationId, Conversation> conversations_;
};

/// Service-side helper (the anonymous responder S): owns a Session to the
/// rendezvous node, registers the service id, re-registers on an interval,
/// surfaces forwarded calls and sends replies.
class AnonymousService {
 public:
  using CallHandler =
      std::function<void(ConversationId conversation, const Bytes& data)>;

  AnonymousService(AnonRouter& router, Session& session, ServiceId service,
                   SimDuration reregister_interval = kMinute);

  /// Constructs the session paths and sends the first registration.
  void start(std::function<void(bool ok)> ready);

  void set_call_handler(CallHandler handler) {
    call_handler_ = std::move(handler);
  }

  /// Replies to a forwarded call.
  void reply(ConversationId conversation, ByteView data);

 private:
  void register_now();

  AnonRouter& router_;
  Session& session_;
  ServiceId service_;
  std::unique_ptr<sim::PeriodicTask> reregister_;
  CallHandler call_handler_;
};

/// Client-side helper (the anonymous initiator C): calls a service through
/// the rendezvous node and surfaces the replies.
class AnonymousClient {
 public:
  using ReplyHandler =
      std::function<void(ConversationId conversation, const Bytes& data)>;

  AnonymousClient(Session& session, Rng rng);

  void start(std::function<void(bool ok)> ready);

  /// Sends a call; returns the conversation id (0 if no usable path).
  ConversationId call(ServiceId service, ByteView data);

  void set_reply_handler(ReplyHandler handler) {
    reply_handler_ = std::move(handler);
  }

 private:
  Session& session_;
  Rng rng_;
  ReplyHandler reply_handler_;
};

}  // namespace p2panon::anon
