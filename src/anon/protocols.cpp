#include "anon/protocols.hpp"

namespace p2panon::anon {

std::string ProtocolSpec::name() const {
  std::string base;
  switch (kind) {
    case ProtocolKind::kCurMix:
      base = "CurMix";
      break;
    case ProtocolKind::kSimRep:
      base = "SimRep(r=" + std::to_string(r) + ")";
      break;
    case ProtocolKind::kSimEra:
      base = "SimEra(k=" + std::to_string(k) + ",r=" + std::to_string(r) + ")";
      break;
  }
  return base + "/" + to_string(mix);
}

SessionConfig ProtocolSpec::session_config(SessionConfig base) const {
  switch (kind) {
    case ProtocolKind::kCurMix:
      base.erasure = ErasureParams::curmix();
      break;
    case ProtocolKind::kSimRep:
      base.erasure = ErasureParams::simrep(r);
      break;
    case ProtocolKind::kSimEra:
      base.erasure = ErasureParams::simera(k, r);
      break;
  }
  base.mix_choice = mix;
  return base;
}

ProtocolSpec ProtocolSpec::curmix(MixChoice mix) {
  return ProtocolSpec{ProtocolKind::kCurMix, 1, 1, mix};
}

ProtocolSpec ProtocolSpec::simrep(std::size_t r, MixChoice mix) {
  return ProtocolSpec{ProtocolKind::kSimRep, r, r, mix};
}

ProtocolSpec ProtocolSpec::simera(std::size_t k, std::size_t r,
                                  MixChoice mix) {
  return ProtocolSpec{ProtocolKind::kSimEra, k, r, mix};
}

}  // namespace p2panon::anon
