// Anonymous-routing message plane (paper §4.1–§4.5).
//
// One AnonRouter instance drives the relay and responder behavior of every
// node in the simulation (per-node state is strictly partitioned, so the
// logical separation between nodes is preserved). It offers the initiator
// primitives that Session builds on:
//
//   forward channel            reverse channel
//   ---------------            ---------------
//   Construct  sid, onion      ConstructAck  sid, status
//   Payload    sid, seq, blob  PayloadRev    sid, seq, blob
//   Teardown   sid
//
// Relays peel/wrap exactly one layer per message and know only their
// neighbors. The responder reassembles erasure-coded segments by message
// id, delivers reconstructed messages to the application handler, acks
// every segment end-to-end (§4.5 failure detection) and can send coded
// responses back over the arrival paths (§4.2).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "anon/buffer_pool.hpp"
#include "anon/onion.hpp"
#include "anon/path_state.hpp"
#include "common/rng.hpp"
#include "crypto/keys.hpp"
#include "erasure/codec.hpp"
#include "net/demux.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace p2panon::obs::capacity {
class ByteCensus;
}  // namespace p2panon::obs::capacity

namespace p2panon::anon {

/// Shed-priority class a payload segment travels with. Numeric order is
/// shed order: under overload the lowest classes are shed first and
/// kControl (construct/ack/teardown machinery and anything the session
/// does not explicitly classify as data) is never shed.
enum class SegmentPriority : std::uint8_t {
  kBulk = 0,
  kStreaming = 1,
  kInteractive = 2,
  kControl = 3,
};

inline const char* segment_priority_name(SegmentPriority priority) {
  switch (priority) {
    case SegmentPriority::kBulk: return "bulk";
    case SegmentPriority::kStreaming: return "streaming";
    case SegmentPriority::kInteractive: return "interactive";
    case SegmentPriority::kControl: return "control";
  }
  return "unknown";
}

struct RouterConfig {
  SimDuration state_ttl = 2 * kMinute;       // §4.3 TTL on cached path state
  SimDuration sweep_interval = 30 * kSecond; // expiry sweep cadence
  SimDuration reassembly_ttl = 2 * kMinute;  // responder reassembly buffers
  bool send_acks = true;                     // per-segment end-to-end acks
  /// Decode-attempt budget for the digest-validated subset-search fallback
  /// (erasure/verified_decode). Only consulted when segments arrive with
  /// an auth trailer — the initiator's opt-in is the feature switch, so
  /// legacy traffic never reaches this code.
  std::size_t max_decode_subsets = 24;
  obs::Registry* metrics = nullptr;          // nullptr = global registry

  /// Hard cap on the capacity the relay buffer pool retains per buffer
  /// (0 = uncapped, the legacy behavior). See BufferPool.
  std::size_t pool_max_capacity = 0;

  /// Overload-resilience knobs. `enabled` turns on the per-relay leaky
  /// bucket that models bounded forwarding queues; the sub-switches pick
  /// what happens at saturation. Everything defaults OFF: with
  /// enabled=false no load is tracked, payload framing is unchanged, and
  /// runs are byte-identical to the legacy router.
  struct OverloadConfig {
    bool enabled = false;
    /// Queue depth (in segments) a relay can absorb before it saturates.
    std::size_t relay_queue_capacity = 64;
    /// Segments per second the relay's queue drains.
    double drain_rate_per_s = 50.0;
    /// Priority-aware shedding: shed bulk from ~70% occupancy, streaming
    /// from ~85%, interactive only when full, control never. With
    /// shedding=false a saturated relay tail-drops every payload class
    /// indiscriminately (the collapse arm in the overload sweep).
    bool shedding = false;
    /// Refuse new path constructions (ConstructAck status 0) while the
    /// relay sits above admission_threshold of capacity.
    bool admission_control = false;
    double admission_threshold = 0.9;
    /// Signal sheds upstream with a plain reverse backpressure frame so
    /// initiators can slow down instead of retransmitting into the storm.
    bool backpressure = false;
  };
  OverloadConfig overload;
};

/// What the responder's application sees for a reconstructed message.
struct ReceivedMessage {
  NodeId responder = kInvalidNode;
  MessageId message_id = 0;
  Bytes data;
  std::size_t segments_received = 0;
  SimTime reconstructed_at = 0;
};

/// What the initiator-side session receives from the reverse path (already
/// stripped of the relay layers it asked the router to remove? No — the
/// router hands over the raw blob; the session, which owns the relay keys,
/// strips them).
struct ReverseDelivery {
  StreamId sid = 0;
  std::uint64_t seq = 0;
  ByteView blob;
  /// Overload backpressure signal (no sealed core — the frame is plain, a
  /// mid-path relay cannot originate a responder-sealed ReverseCore). When
  /// true, `blob` is empty and `shed_class` names the shed traffic class.
  bool backpressure = false;
  std::uint8_t shed_class = 0;
};

class AnonRouter {
 public:
  using LivenessOracle = std::function<bool(NodeId)>;
  using MessageHandler = std::function<void(const ReceivedMessage&)>;
  using ConstructCallback = std::function<void(bool ok)>;
  using ReverseHandler = std::function<void(const ReverseDelivery&)>;

  AnonRouter(sim::Simulator& simulator, net::Demux& demux,
             const OnionCodec& onion, const crypto::KeyDirectory& directory,
             std::vector<crypto::KeyPair> node_keys, LivenessOracle is_up,
             RouterConfig config, Rng rng);
  AnonRouter(const AnonRouter&) = delete;
  AnonRouter& operator=(const AnonRouter&) = delete;

  /// Registers the channel handlers and starts the TTL sweeper.
  void start();

  /// Application handler invoked when any responder reconstructs a message.
  void set_message_handler(MessageHandler handler) {
    message_handler_ = std::move(handler);
  }

  // --- initiator primitives (used by Session) ---

  /// Builds the §4.1 path onion and launches construction. The callback
  /// fires once: true when the end-to-end construct-ack returns, false on
  /// timeout. Returns the initiator-side stream id identifying the path.
  StreamId initiate_path(NodeId initiator, const std::vector<NodeId>& relays,
                         const std::vector<RelayKey>& relay_keys,
                         NodeId responder, SimDuration timeout,
                         ConstructCallback callback);

  /// Registers the handler for reverse-path deliveries on a path.
  void register_reverse_handler(NodeId initiator, StreamId sid,
                                ReverseHandler handler);
  void unregister_reverse_handler(NodeId initiator, StreamId sid);

  /// Sends one already-built payload onion down a path (§4.2). The blob
  /// must be the full layered payload; seq is the layer nonce the session
  /// used for wrapping. `priority` rides a one-byte trailer header only
  /// when overload mode is on; otherwise the wire format is the legacy one
  /// and the argument is ignored.
  void send_payload(NodeId initiator, StreamId sid, NodeId first_relay,
                    std::uint64_t seq, Bytes blob,
                    SegmentPriority priority = SegmentPriority::kInteractive);

  /// Combined construction + payload (§4.2 "path construction and message
  /// sending in the same time"): each relay peels its construction layer,
  /// caches the path state AND strips its payload layer in one message.
  /// There is no construct-ack; the payload's end-to-end ack doubles as
  /// the confirmation. `sid` must come from new_initiator_sid().
  void send_construct_with_payload(NodeId initiator, StreamId sid,
                                   NodeId first_relay, std::uint64_t seq,
                                   ByteView onion_blob, ByteView payload_blob);

  /// Mints an initiator-side stream id unused by this node's pending
  /// constructions and reverse handlers.
  StreamId new_initiator_sid(NodeId initiator);

  /// Asks every relay on the path to release its cached state (§4.3).
  void send_teardown(NodeId initiator, StreamId sid, NodeId first_relay);

  /// Path reuse (§4.4): re-points the path's last relay at a new
  /// destination without rebuilding the path (no asymmetric crypto). The
  /// new destination rides inside the layered blob, so intermediate relays
  /// never learn it; the last relay rewires its cached state (generating
  /// the paper's sid'_L) and acks end-to-end. The callback fires true on
  /// the ack, false on timeout. `blob` must be the relay-layered wrapping
  /// of the 4-byte big-endian destination (Session::redirect builds it).
  void send_retarget(NodeId initiator, StreamId sid, NodeId first_relay,
                     std::uint64_t seq, Bytes blob, SimDuration timeout,
                     ConstructCallback callback);

  // --- responder primitives ---

  /// Sends an application response for a previously reconstructed message:
  /// erasure-codes `data` with the same (m, n) the request used and sends
  /// the segments back over the arrival paths (§4.2). Returns false if the
  /// reassembly record has expired.
  bool send_response(NodeId responder, MessageId message_id, ByteView data);

  // --- introspection / accounting ---

  std::size_t path_state_count(NodeId node) const;

  /// Residual-state introspection for leak checks (the chaos harness
  /// asserts all three return to their quiescent values after teardown).
  std::size_t pending_construction_count(NodeId node) const;
  std::size_t reverse_handler_count(NodeId node) const;
  std::size_t reassembly_count(NodeId node) const;

  /// Reports the router's per-node structures (path-state tables, pending
  /// constructions, reverse handlers, reassembly buffers, node keys, the
  /// relay buffer pool) into the capacity byte census under "router".
  void byte_census(obs::capacity::ByteCensus& census) const;

  /// Point-in-time overload snapshot (levels drained to `now` without
  /// mutating the buckets). All zeros while overload mode is off.
  struct OverloadStats {
    double max_level = 0.0;    // deepest relay queue, in segments
    double total_level = 0.0;  // sum across nodes
    std::size_t hot_nodes = 0; // nodes above 70% of capacity
    std::size_t capacity = 0;  // configured relay_queue_capacity
  };
  OverloadStats overload_stats(SimTime now) const;

  /// Leaky-bucket occupancy of one relay, drained to `now` (test hook).
  double relay_queue_level(NodeId node, SimTime now) const;

  const BufferPool& pool() const { return pool_; }

  /// Fires when an *undelivered* reassembly record is TTL-swept — the
  /// message can no longer complete at that responder (segments that
  /// straggle in later start a fresh, doomed record). Chaos accounting
  /// uses it to explain messages whose segments were all acked yet never
  /// assembled.
  using ReassemblyExpiryHandler =
      std::function<void(NodeId responder, MessageId message_id)>;
  void set_reassembly_expiry_handler(ReassemblyExpiryHandler handler) {
    reassembly_expiry_handler_ = std::move(handler);
  }
  std::uint64_t reassemblies_expired() const { return reassemblies_expired_; }

  /// Shared codec cache keyed by (m, n) — sessions and the responder use
  /// the same instances so RS matrices are built once.
  const erasure::Codec& codec_for(std::size_t m, std::size_t n);

  std::uint64_t construct_bytes() const { return construct_bytes_; }
  std::uint64_t payload_bytes() const { return payload_bytes_; }
  std::uint64_t reverse_bytes() const { return reverse_bytes_; }
  std::uint64_t messages_forwarded() const { return messages_forwarded_; }
  std::uint64_t peel_failures() const { return peel_failures_; }
  const OnionCodec& onion() const { return onion_; }
  const crypto::KeyDirectory& directory() const { return directory_; }
  const crypto::KeyPair& node_key(NodeId node) const {
    return node_keys_[node];
  }
  Rng& rng() { return rng_; }
  sim::Simulator& simulator() { return simulator_; }
  const RouterConfig& config() const { return config_; }

  /// Metrics registry this router reports into (config's, or the process
  /// global). Sessions register their own series here so one snapshot
  /// covers the whole stack of a run.
  obs::Registry& metrics() const { return *metrics_; }

  /// Reverse-direction nonce bit: reverse layer seq = seq | kReverseBit so
  /// a (key, seq) pair is never reused across directions.
  static constexpr std::uint64_t kReverseBit = 1ULL << 63;

 private:
  struct PendingConstruction {
    ConstructCallback callback;
    sim::EventId timeout_event = sim::kInvalidEventId;
    const char* span = "path_construct";  // trace span closed on ack/timeout
  };

  struct Reassembly {
    std::size_t needed = 0;       // m (0 = metadata not yet trusted)
    std::size_t total = 0;        // n
    std::size_t original_size = 0;
    std::vector<erasure::Segment> segments;
    std::vector<StreamId> arrival_sids;  // responder terminal entries
    bool delivered = false;
    SimTime expires = 0;
    std::uint32_t next_response_id = 0;

    // Corruption-resilience state; untouched (and unallocated) while only
    // legacy cores arrive.
    std::uint8_t auth_flags = 0;   // strongest trailer shape seen
    bool digest_known = false;     // trusted digest (from a tag-verified core)
    crypto::MessageDigest digest{};
    std::vector<StreamId> segment_sids;     // arrival sid per admitted segment
    std::vector<bool> segment_verified;     // tag-verified per admitted segment
    std::vector<erasure::Segment> quarantined;  // tag-rejected, never decoded
    std::vector<StreamId> quarantined_sids;
    /// Digest ballots for the tagless mode: (digest, votes).
    std::vector<std::pair<crypto::MessageDigest, std::size_t>> digest_votes;
  };

  void handle_forward(NodeId from, NodeId to, ByteView payload);
  void handle_reverse(NodeId from, NodeId to, ByteView payload);
  void on_construct(NodeId from, NodeId to, StreamId sid, ByteView onion_blob);
  void on_payload(NodeId from, NodeId to, StreamId sid, std::uint64_t seq,
                  ByteView blob, SegmentPriority priority);
  void on_teardown(NodeId to, StreamId sid);
  void on_retarget(NodeId to, StreamId sid, std::uint64_t seq, ByteView blob);
  void on_construct_payload(NodeId from, NodeId to, StreamId sid,
                            std::uint64_t seq, ByteView blob);
  void on_construct_ack(NodeId to, StreamId sid, bool ok);
  void on_payload_rev(NodeId to, StreamId sid, std::uint64_t seq,
                      ByteView blob);
  void deliver_to_responder(NodeId responder, RelayEntry& entry,
                            const PayloadCore& core);
  void responder_ack(NodeId responder, RelayEntry& entry,
                     MessageId message_id, std::uint32_t segment_index);
  /// Corruption verdict back to the initiator (ReverseCore::kCorruptNack),
  /// framed and sealed exactly like responder_ack.
  void responder_nack(NodeId responder, RelayEntry& entry,
                      MessageId message_id, std::uint32_t segment_index);
  /// Decode paths for reassemblies carrying an auth trailer: verified-only
  /// decode, then digest-validated subset search over the remainder. Sends
  /// corrupt-nacks for every segment proven bad. Returns true when the
  /// message was delivered (or proven undeliverable this round is false —
  /// more segments may still arrive).
  bool try_authenticated_decode(NodeId responder, MessageId message_id,
                                Reassembly& reassembly);
  void deliver_reconstructed(NodeId responder, MessageId message_id,
                             Reassembly& reassembly, Bytes message);
  void nack_segments(NodeId responder, MessageId message_id,
                     const std::vector<std::uint32_t>& indices,
                     const std::vector<erasure::Segment>& pool,
                     const std::vector<StreamId>& pool_sids);
  void sweep();
  void finish_pending(NodeId initiator, StreamId sid, bool ok, bool timed_out);
  void record_peel_failure(NodeId node, const char* where);

  // --- overload machinery (all no-ops while config_.overload.enabled is
  // false; the leaky buckets are plain doubles, no RNG is consumed) ---

  /// Drains `node`'s bucket to now and returns its level (mutating).
  double drain_load(NodeId node);
  /// Charges one segment to `node`'s bucket (call after drain_load).
  void charge_load(NodeId node);
  /// Shed decision for a payload segment arriving at a saturated relay.
  /// Counts the shed and (optionally) signals backpressure upstream.
  bool should_shed(NodeId node, SegmentPriority priority);
  void count_shed(SegmentPriority priority);
  void on_backpressure(NodeId to, StreamId sid, std::uint8_t shed_class);
  void signal_backpressure(NodeId node, NodeId upstream, StreamId upstream_sid,
                           SegmentPriority priority);

  // framing helpers
  void send_forward(NodeId from, NodeId to, std::uint8_t type, StreamId sid,
                    std::uint64_t seq, ByteView blob,
                    SegmentPriority priority = SegmentPriority::kControl);
  void send_reverse(NodeId from, NodeId to, std::uint8_t type, StreamId sid,
                    std::uint64_t seq, ByteView blob);

  sim::Simulator& simulator_;
  net::Demux& demux_;
  const OnionCodec& onion_;
  const crypto::KeyDirectory& directory_;
  std::vector<crypto::KeyPair> node_keys_;
  LivenessOracle is_up_;
  RouterConfig config_;
  Rng rng_;

  // Relay data-plane scratch: peel/wrap buffers and framing buffers lease
  // from here so steady-state relaying reuses warmed capacity instead of
  // allocating per message.
  BufferPool pool_;

  /// One leaky bucket per node modelling its bounded forwarding queue.
  /// Sized eagerly (16 bytes/node, zero-init, no RNG) but only read or
  /// written behind config_.overload.enabled. Deliberately absent from the
  /// byte census: it is fixed-size transient accounting, not a structure
  /// that grows with load (see DESIGN.md §13).
  struct NodeLoad {
    double level = 0.0;
    SimTime last_drain = 0;
  };
  std::vector<NodeLoad> load_;

  std::vector<PathStateTable> tables_;
  std::vector<std::unordered_map<StreamId, PendingConstruction>> pending_;
  std::vector<std::unordered_map<StreamId, ReverseHandler>> reverse_handlers_;
  std::vector<std::unordered_map<MessageId, Reassembly>> reassembly_;
  std::map<std::pair<std::size_t, std::size_t>,
           std::unique_ptr<erasure::Codec>>
      codecs_;
  std::unique_ptr<sim::PeriodicTask> sweeper_;
  MessageHandler message_handler_;
  ReassemblyExpiryHandler reassembly_expiry_handler_;

  std::uint64_t construct_bytes_ = 0;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t reverse_bytes_ = 0;
  std::uint64_t messages_forwarded_ = 0;
  std::uint64_t peel_failures_ = 0;
  std::uint64_t reassemblies_expired_ = 0;

  // Registry mirrors of the private tallies above (the per-instance
  // accessors stay the per-run contract; the registry is what sweeps,
  // snapshots, and invariant checks read).
  obs::Registry* metrics_;
  obs::Counter* bytes_construct_;
  obs::Counter* bytes_payload_;
  obs::Counter* bytes_reverse_;
  obs::Counter* forwarded_ctr_;
  obs::Counter* peel_failures_ctr_;
  obs::Counter* construct_attempts_ctr_;
  obs::Counter* construct_ok_ctr_;
  obs::Counter* construct_timeout_ctr_;
  obs::Counter* reconstructions_ctr_;
  obs::Counter* reassembly_expired_ctr_;
  obs::HdrHistogram* reconstruct_segments_;
  // Segment-authentication outcomes (corruption resilience). Registered
  // eagerly like every other series; they stay 0 in legacy runs.
  obs::Counter* auth_verified_ctr_;
  obs::Counter* auth_rejected_ctr_;
  obs::Counter* auth_nacks_ctr_;
  obs::Counter* auth_fallback_ok_ctr_;
  obs::Counter* auth_fallback_failed_ctr_;
  // Overload outcomes. Registered eagerly like every other series; they
  // stay 0 in legacy runs. The control-class shed counter exists so the
  // sweep gate can assert it is still zero — the code never increments it.
  obs::Counter* shed_ctrs_[4];  // indexed by SegmentPriority
  obs::Counter* admission_rejects_ctr_;
  obs::Counter* backpressure_ctr_;
};

// Reverse-core payloads (sealed under R_{L+1} / the responder key).
struct ReverseCore {
  /// kCorruptNack (corruption resilience): the responder's verdict that
  /// the named segment arrived tampered with — either its auth tag failed
  /// or the digest-validated decode proved it wrong. Framed exactly like
  /// kAck (13 bytes). Only ever sent in reply to auth-trailer segments.
  enum class Type : std::uint8_t {
    kAck = 1,
    kResponseSegment = 2,
    kCorruptNack = 3,
  };
  Type type = Type::kAck;
  MessageId message_id = 0;
  std::uint32_t segment_index = 0;
  // Response-segment fields. response_id distinguishes multiple responses
  // sent for the same request (e.g. a rendezvous host pushing many
  // forwarded calls down one registration's reverse path).
  std::uint32_t response_id = 0;
  std::uint32_t original_size = 0;
  std::uint16_t needed_segments = 1;
  std::uint16_t total_segments = 1;
  Bytes segment;
};

Bytes serialize_reverse_core(const ReverseCore& core);
std::optional<ReverseCore> parse_reverse_core(ByteView plain);

}  // namespace p2panon::anon
