#include "anon/adaptive.hpp"

#include <cmath>

#include "analysis/path_model.hpp"
#include "common/logging.hpp"

namespace p2panon::anon {

AdaptiveSessionController::AdaptiveSessionController(
    AnonRouter& router, const membership::NodeCache& cache, NodeId initiator,
    NodeId responder, AdaptiveConfig config, Rng rng)
    : router_(router),
      cache_(cache),
      initiator_(initiator),
      responder_(responder),
      config_(std::move(config)),
      rng_(rng) {}

AdaptiveSessionController::~AdaptiveSessionController() { *alive_ = false; }

std::unique_ptr<Session> AdaptiveSessionController::make_session(
    const ErasureParams& params) {
  SessionConfig session_config = config_.session;
  session_config.erasure = params;
  // Migration candidates must fail fast: a stuck candidate blocks further
  // adaptation, so cap its whole-set retries well below the session
  // default and let the next evaluation try again with fresher estimates.
  session_config.max_construct_attempts =
      std::min<std::size_t>(session_config.max_construct_attempts, 8);
  return std::make_unique<Session>(router_, cache_, initiator_, responder_,
                                   session_config, rng_.fork());
}

void AdaptiveSessionController::start(std::function<void(bool)> ready) {
  active_ = make_session(config_.session.erasure);
  active_->construct(
      [this, ready = std::move(ready), alive = alive_](bool ok,
                                                       std::size_t) {
        if (!*alive) return;
        ready(ok);
      });
  evaluator_ = std::make_unique<sim::PeriodicTask>(
      router_.simulator(), config_.evaluation_interval,
      [this] { evaluate(); });
  evaluator_->start();
}

MessageId AdaptiveSessionController::send_message(ByteView data) {
  if (!active_) return 0;
  return active_->send_message(data);
}

void AdaptiveSessionController::evaluate() {
  if (!active_) return;

  // Segment outcomes since the last evaluation: acked / sent.
  const std::uint64_t segments = active_->segments_sent();
  const std::uint64_t acks = active_->acks_received();
  const std::uint64_t new_segments = segments - last_segments_;
  const std::uint64_t new_acks = acks - last_acks_;
  last_segments_ = segments;
  last_acks_ = acks;

  if (new_segments == 0) {
    // No traffic flowed. If that is because the path set is dead (fewer
    // live paths than the reconstruction minimum), the session is
    // starving — treat the window as total loss so the advisor reacts;
    // otherwise there is simply nothing to learn from.
    if (active_->established_paths() >=
        active_->config().erasure.min_paths()) {
      return;
    }
    path_success_ewma_ *= (1.0 - config_.ewma_alpha);
    observations_ += config_.min_observations;  // unblock adaptation
  } else {
    observations_ += new_segments;
    const double window_success =
        static_cast<double>(new_acks) / static_cast<double>(new_segments);
    path_success_ewma_ = config_.ewma_alpha * window_success +
                         (1.0 - config_.ewma_alpha) * path_success_ewma_;
  }
  if (observations_ < config_.min_observations) return;

  // Invert p = pa^L for the availability the advisor expects, clamping
  // away from the degenerate edges.
  const double p = std::clamp(path_success_ewma_, 0.01, 0.999);
  const double pa =
      std::pow(p, 1.0 / static_cast<double>(config_.session.path_length));

  const auto choices = analysis::advise_parameters(
      pa, config_.session.path_length, config_.target_success, config_.max_r,
      config_.max_k);
  // When nothing within budget reaches the target, run best-effort: the
  // (k, r) maximizing delivery probability beats freezing on parameters
  // sized for a healthier network.
  analysis::ParameterChoice best;
  if (choices.empty()) {
    best = analysis::best_effort_parameters(pa, config_.session.path_length,
                                            config_.max_r, config_.max_k);
  } else {
    // Among target-meeting choices prefer the fewest paths (k * L relays
    // is the scarce resource in a finite overlay), then the cheapest r.
    best = choices.front();
    for (const auto& choice : choices) {
      if (choice.k < best.k ||
          (choice.k == best.k && choice.r < best.r)) {
        best = choice;
      }
    }
  }
  if (best.k == 0 || best.r == 0) return;
  ErasureParams params = ErasureParams::simera(best.k, best.r);
  const ErasureParams& current = active_->config().erasure;
  if (params.k == current.k && params.m == current.m &&
      params.n == current.n) {
    return;
  }
  migrate(params);
}

void AdaptiveSessionController::migrate(const ErasureParams& params) {
  if (candidate_) return;  // a migration is already in flight
  LOG_DEBUG << "adaptive: migrating toward (k=" << params.k
            << ",m=" << params.m << ",n=" << params.n << ")";
  candidate_ = make_session(params);
  candidate_->construct([this, alive = alive_](bool ok,
                                               std::size_t attempts) {
    if (!*alive) return;
    if (!ok) {
      LOG_DEBUG << "adaptive: candidate construction failed after "
                << attempts << " attempts; retrying next evaluation";
      candidate_.reset();  // keep the old set; try again next evaluation
      return;
    }
    const ErasureParams from = active_->config().erasure;
    const ErasureParams to = candidate_->config().erasure;
    active_->teardown();
    active_ = std::move(candidate_);
    ++reconfigurations_;
    // Reset the outcome window: the new parameter set starts clean.
    last_segments_ = active_->segments_sent();
    last_acks_ = active_->acks_received();
    LOG_INFO << "adaptive: migrated (k=" << from.k << ",m=" << from.m
             << ",n=" << from.n << ") -> (k=" << to.k << ",m=" << to.m
             << ",n=" << to.n << ")";
    if (reconfigure_handler_) {
      reconfigure_handler_(from, to, path_success_ewma_);
    }
  });
}

}  // namespace p2panon::anon
