#include "anon/allocation.hpp"

#include <algorithm>
#include <numeric>

namespace p2panon::anon {

void ErasureParams::validate() const {
  if (m < 1 || n < m || k < 1) {
    throw std::invalid_argument("ErasureParams: need 1 <= m <= n, k >= 1");
  }
  if (n % k != 0) {
    throw std::invalid_argument(
        "ErasureParams: n must be a multiple of k for even allocation");
  }
  if (n > 255) {
    throw std::invalid_argument("ErasureParams: n <= 255 (GF(256) codec)");
  }
}

ErasureParams ErasureParams::simera(std::size_t k, std::size_t r) {
  if (r < 1 || k < 1 || k % r != 0) {
    throw std::invalid_argument("simera: k must be a positive multiple of r");
  }
  ErasureParams p;
  p.k = k;
  p.m = k / r;
  p.n = k;
  p.validate();
  return p;
}

ErasureParams ErasureParams::simrep(std::size_t r) {
  ErasureParams p;
  p.k = r;
  p.m = 1;
  p.n = r;
  p.validate();
  return p;
}

ErasureParams ErasureParams::curmix() {
  ErasureParams p;
  p.k = 1;
  p.m = 1;
  p.n = 1;
  return p;
}

Allocation allocate_even(const ErasureParams& params) {
  params.validate();
  Allocation alloc(params.n);
  for (std::size_t s = 0; s < params.n; ++s) alloc[s] = s % params.k;
  return alloc;
}

Allocation allocate_weighted(const ErasureParams& params,
                             const std::vector<double>& path_scores,
                             std::size_t spread) {
  params.validate();
  if (path_scores.size() != params.k) {
    throw std::invalid_argument("allocate_weighted: one score per path");
  }
  const double total =
      std::accumulate(path_scores.begin(), path_scores.end(), 0.0);
  if (total <= 0.0) return allocate_even(params);

  const std::size_t per = params.segments_per_path();
  const std::size_t cap = per + spread;

  // Largest-remainder apportionment of n segments by score, capped.
  struct Share {
    std::size_t path;
    std::size_t count;
    double remainder;
  };
  std::vector<Share> shares(params.k);
  std::size_t assigned = 0;
  for (std::size_t j = 0; j < params.k; ++j) {
    const double ideal =
        static_cast<double>(params.n) * path_scores[j] / total;
    std::size_t base = static_cast<std::size_t>(ideal);
    base = std::min(base, cap);
    shares[j] = Share{j, base, ideal - static_cast<double>(base)};
    assigned += base;
  }
  // Distribute the rest by largest remainder, respecting the cap.
  std::vector<std::size_t> order(params.k);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (shares[a].remainder != shares[b].remainder) {
      return shares[a].remainder > shares[b].remainder;
    }
    return a < b;
  });
  std::size_t cursor = 0;
  while (assigned < params.n) {
    Share& s = shares[order[cursor % params.k]];
    if (s.count < cap) {
      ++s.count;
      ++assigned;
    }
    ++cursor;
    if (cursor > 4 * params.k * (spread + 1) + params.n) {
      // Cap too tight to place n segments; fall back to even.
      return allocate_even(params);
    }
  }

  Allocation alloc;
  alloc.reserve(params.n);
  for (const Share& s : shares) {
    for (std::size_t c = 0; c < s.count; ++c) alloc.push_back(s.path);
  }
  return alloc;
}

std::size_t segments_delivered(const Allocation& alloc,
                               const std::vector<bool>& path_alive) {
  std::size_t delivered = 0;
  for (const std::size_t path : alloc) {
    if (path < path_alive.size() && path_alive[path]) ++delivered;
  }
  return delivered;
}

}  // namespace p2panon::anon
