// Cover traffic (paper §4.6).
//
// Each participating node periodically builds k paths of random relays to
// a randomly chosen destination and sends a dummy message that is
// byte-indistinguishable from a real one (same Session machinery, same
// channels, same framing — only the source and the destination could tell,
// and the destination simply reconstructs bytes it discards).
//
// k is per-node ("k is unnecessary [a] system-wide parameter and each node
// may pick a value corresponding to its bandwidth constraints"), so the
// generator takes a per-node config callback.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "anon/session.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace p2panon::anon {

struct CoverTrafficConfig {
  SimDuration interval = 30 * kSecond;  // per-node dummy-message cadence
  std::size_t k = 2;                    // paths per cover message
  std::size_t message_size = 1024;      // bytes per dummy message
  std::size_t path_length = 3;          // L
};

class CoverTrafficGenerator {
 public:
  using LivenessOracle = std::function<bool(NodeId)>;
  using CacheProvider = std::function<const membership::NodeCache&(NodeId)>;
  using ConfigProvider = std::function<CoverTrafficConfig(NodeId)>;

  /// `nodes` lists the participants. Config may differ per node. When a
  /// registry is supplied, dummy sends are counted as
  /// `anon_cover_messages_total` (registered lazily here, so runs without
  /// cover traffic keep their registry snapshots untouched).
  CoverTrafficGenerator(AnonRouter& router, CacheProvider caches,
                        LivenessOracle is_up, std::vector<NodeId> nodes,
                        ConfigProvider config, Rng rng,
                        obs::Registry* metrics = nullptr);
  ~CoverTrafficGenerator();
  CoverTrafficGenerator(const CoverTrafficGenerator&) = delete;
  CoverTrafficGenerator& operator=(const CoverTrafficGenerator&) = delete;

  void start();
  void stop();

  std::uint64_t cover_messages_sent() const { return messages_sent_; }

 private:
  void tick(std::size_t index);

  AnonRouter& router_;
  CacheProvider caches_;
  LivenessOracle is_up_;
  std::vector<NodeId> nodes_;
  ConfigProvider config_;
  Rng rng_;

  std::vector<std::unique_ptr<sim::PeriodicTask>> tasks_;
  // Ephemeral sessions kept alive until their message round completes.
  std::vector<std::unique_ptr<Session>> in_flight_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::uint64_t messages_sent_ = 0;
  obs::Counter* cover_messages_ = nullptr;  // null without a registry
};

}  // namespace p2panon::anon
