#include "anon/router.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/logging.hpp"
#include "erasure/verified_decode.hpp"
#include "obs/capacity/census.hpp"
#include "obs/trace.hpp"

namespace p2panon::anon {

namespace {
constexpr std::uint8_t kTypeConstruct = 1;
constexpr std::uint8_t kTypeConstructAck = 2;
constexpr std::uint8_t kTypePayload = 3;
constexpr std::uint8_t kTypePayloadRev = 4;
constexpr std::uint8_t kTypeTeardown = 5;
constexpr std::uint8_t kTypeRetarget = 6;
constexpr std::uint8_t kTypeConstructPayload = 7;
// Overload backpressure (reverse channel, plain like kTypeConstructAck):
// [type][sid:8][class:1]. A shedding relay originates it toward its
// upstream; every relay maps downstream sid -> upstream sid until the
// frame reaches the initiator's reverse handler. Only emitted when
// RouterConfig::overload.backpressure is on, so legacy wire traffic never
// contains it.
constexpr std::uint8_t kTypeBackpressure = 8;

/// Zero-sim-duration async span bracketing one relay's processing of a
/// datagram; only reached behind an enabled() check. Keeps the per-hop peel
/// visible on the message's correlation chain.
class HopRelaySpan {
 public:
  HopRelaySpan(NodeId node, const char* kind)
      : corr_(obs::current_correlation()) {
    obs::TraceArgs args;
    args.add("node", static_cast<std::uint64_t>(node)).add("kind", kind);
    obs::Tracer::instance().span_begin("anon", "hop_relay", corr_, args);
  }
  ~HopRelaySpan() {
    obs::Tracer::instance().span_end("anon", "hop_relay", corr_);
  }

 private:
  obs::CorrelationId corr_;
};

}  // namespace

Bytes serialize_reverse_core(const ReverseCore& core) {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(core.type));
  put_u64be(out, core.message_id);
  put_u32be(out, core.segment_index);
  if (core.type == ReverseCore::Type::kResponseSegment) {
    put_u32be(out, core.response_id);
    put_u32be(out, core.original_size);
    put_u16be(out, core.needed_segments);
    put_u16be(out, core.total_segments);
    put_u32be(out, static_cast<std::uint32_t>(core.segment.size()));
    append(out, core.segment);
  }
  return out;
}

std::optional<ReverseCore> parse_reverse_core(ByteView plain) {
  if (plain.size() < 13) return std::nullopt;
  ReverseCore core;
  const std::uint8_t type = plain[0];
  if (type != 1 && type != 2 && type != 3) return std::nullopt;
  core.type = static_cast<ReverseCore::Type>(type);
  core.message_id = get_u64be(plain, 1);
  core.segment_index = get_u32be(plain, 9);
  if (core.type == ReverseCore::Type::kAck ||
      core.type == ReverseCore::Type::kCorruptNack) {
    return plain.size() == 13 ? std::optional<ReverseCore>(core)
                              : std::nullopt;
  }
  if (plain.size() < 13 + 4 + 4 + 2 + 2 + 4) return std::nullopt;
  core.response_id = get_u32be(plain, 13);
  core.original_size = get_u32be(plain, 17);
  core.needed_segments = get_u16be(plain, 21);
  core.total_segments = get_u16be(plain, 23);
  const std::size_t seg_len = get_u32be(plain, 25);
  if (plain.size() != 29 + seg_len) return std::nullopt;
  // Same semantic validation as parse_payload_core: make_codec throws on
  // parameters outside 1 <= m <= n <= 255, so garbage that survives the
  // framing check must be rejected here.
  if (core.needed_segments == 0 ||
      core.needed_segments > core.total_segments ||
      core.total_segments > 255 ||
      core.segment_index >= core.total_segments) {
    return std::nullopt;
  }
  const ByteView seg = plain.subspan(29);
  core.segment.assign(seg.begin(), seg.end());
  return core;
}

AnonRouter::AnonRouter(sim::Simulator& simulator, net::Demux& demux,
                       const OnionCodec& onion,
                       const crypto::KeyDirectory& directory,
                       std::vector<crypto::KeyPair> node_keys,
                       LivenessOracle is_up, RouterConfig config, Rng rng)
    : simulator_(simulator),
      demux_(demux),
      onion_(onion),
      directory_(directory),
      node_keys_(std::move(node_keys)),
      is_up_(std::move(is_up)),
      config_(config),
      rng_(rng),
      pool_(BufferPool::kDefaultCapacity, config.pool_max_capacity),
      metrics_(config.metrics != nullptr ? config.metrics
                                         : &obs::Registry::global()),
      bytes_construct_(
          metrics_->counter("anon_bytes_total", {{"channel", "construct"}})),
      bytes_payload_(
          metrics_->counter("anon_bytes_total", {{"channel", "payload"}})),
      bytes_reverse_(
          metrics_->counter("anon_bytes_total", {{"channel", "reverse"}})),
      forwarded_ctr_(metrics_->counter("anon_messages_forwarded_total")),
      peel_failures_ctr_(metrics_->counter("anon_peel_failures_total")),
      construct_attempts_ctr_(
          metrics_->counter("anon_path_constructs_total",
                            {{"result", "started"}})),
      construct_ok_ctr_(metrics_->counter("anon_path_constructs_total",
                                          {{"result", "ok"}})),
      construct_timeout_ctr_(metrics_->counter("anon_path_constructs_total",
                                               {{"result", "failed"}})),
      reconstructions_ctr_(metrics_->counter("anon_reconstructions_total")),
      reassembly_expired_ctr_(
          metrics_->counter("anon_reassemblies_expired_total")),
      reconstruct_segments_(metrics_->histogram("anon_reconstruct_segments")),
      auth_verified_ctr_(metrics_->counter("anon_segment_auth_total",
                                           {{"result", "verified"}})),
      auth_rejected_ctr_(metrics_->counter("anon_segment_auth_total",
                                           {{"result", "rejected"}})),
      auth_nacks_ctr_(metrics_->counter("anon_segment_auth_nacks_total")),
      auth_fallback_ok_ctr_(metrics_->counter(
          "anon_segment_auth_fallback_total", {{"result", "ok"}})),
      auth_fallback_failed_ctr_(metrics_->counter(
          "anon_segment_auth_fallback_total", {{"result", "failed"}})),
      shed_ctrs_{metrics_->counter("anon_overload_sheds_total",
                                   {{"class", "bulk"}}),
                 metrics_->counter("anon_overload_sheds_total",
                                   {{"class", "streaming"}}),
                 metrics_->counter("anon_overload_sheds_total",
                                   {{"class", "interactive"}}),
                 metrics_->counter("anon_overload_sheds_total",
                                   {{"class", "control"}})},
      admission_rejects_ctr_(
          metrics_->counter("anon_admission_rejects_total")),
      backpressure_ctr_(
          metrics_->counter("anon_backpressure_signals_total")) {
  const std::size_t n = node_keys_.size();
  load_.resize(n);
  tables_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) tables_.emplace_back(rng_.fork());
  pending_.resize(n);
  reverse_handlers_.resize(n);
  reassembly_.resize(n);
}

void AnonRouter::start() {
  demux_.set_handler(net::Channel::kAnonForward,
                     [this](NodeId from, NodeId to, ByteView payload) {
                       handle_forward(from, to, payload);
                     });
  demux_.set_handler(net::Channel::kAnonReverse,
                     [this](NodeId from, NodeId to, ByteView payload) {
                       handle_reverse(from, to, payload);
                     });
  sweeper_ = std::make_unique<sim::PeriodicTask>(
      simulator_, config_.sweep_interval, [this] { sweep(); });
  sweeper_->start();
}

// --- framing --------------------------------------------------------------------

void AnonRouter::send_forward(NodeId from, NodeId to, std::uint8_t type,
                              StreamId sid, std::uint64_t seq, ByteView blob,
                              SegmentPriority priority) {
  PooledBytes lease(pool_, 18 + blob.size());
  Bytes& msg = *lease;
  msg.push_back(type);
  put_u64be(msg, sid);
  if (type == kTypePayload || type == kTypeRetarget ||
      type == kTypeConstructPayload) {
    put_u64be(msg, seq);
  }
  // The shed-priority byte exists only in overload mode and only on
  // payload frames; every other frame type is control-plane by
  // construction. Off means off: legacy framing is byte-identical.
  if (config_.overload.enabled && type == kTypePayload) {
    msg.push_back(static_cast<std::uint8_t>(priority));
  }
  append(msg, blob);
  if (type == kTypeConstruct || type == kTypeRetarget) {
    construct_bytes_ += msg.size();
    bytes_construct_->inc(msg.size());
  } else if (type == kTypePayload || type == kTypeConstructPayload) {
    payload_bytes_ += msg.size();
    bytes_payload_->inc(msg.size());
  }
  demux_.send(net::Channel::kAnonForward, from, to, msg);
}

void AnonRouter::send_reverse(NodeId from, NodeId to, std::uint8_t type,
                              StreamId sid, std::uint64_t seq,
                              ByteView blob) {
  PooledBytes lease(pool_, 18 + blob.size());
  Bytes& msg = *lease;
  msg.push_back(type);
  put_u64be(msg, sid);
  if (type == kTypePayloadRev) {
    put_u64be(msg, seq);
  }
  append(msg, blob);
  reverse_bytes_ += msg.size();
  bytes_reverse_->inc(msg.size());
  demux_.send(net::Channel::kAnonReverse, from, to, msg);
}

// --- initiator primitives ----------------------------------------------------------

StreamId AnonRouter::initiate_path(NodeId initiator,
                                   const std::vector<NodeId>& relays,
                                   const std::vector<RelayKey>& relay_keys,
                                   NodeId responder, SimDuration timeout,
                                   ConstructCallback callback) {
  if (relays.empty()) {
    throw std::invalid_argument("initiate_path: need at least one relay");
  }
  const Bytes onion_blob =
      onion_.build_path_onion(relays, relay_keys, responder, directory_, rng_);

  // The initiator's own sid for this path: what P_1 will see as its
  // upstream sid.
  StreamId sid;
  do {
    sid = rng_.next_u64();
  } while (sid == 0 || pending_[initiator].count(sid) > 0 ||
           reverse_handlers_[initiator].count(sid) > 0);

  // The construction chain is correlated by the initiator-side sid: the
  // construct relays, the ack's trip back, and the timeout all inherit it
  // through the event queue.
  construct_attempts_ctr_->inc();
  obs::CorrelationScope corr_scope(sid);
  auto& tracer = obs::Tracer::instance();
  if (tracer.enabled()) {
    obs::TraceArgs args;
    args.add("initiator", static_cast<std::uint64_t>(initiator))
        .add("responder", static_cast<std::uint64_t>(responder))
        .add("hops", static_cast<std::uint64_t>(relays.size()));
    tracer.span_begin("anon", "path_construct", sid, args);
  }

  static const auto kTimeoutEvent =
      obs::capacity::event_type("router.timeout");
  PendingConstruction pending;
  pending.callback = std::move(callback);
  pending.timeout_event = simulator_.schedule_after(
      timeout,
      [this, initiator, sid] {
        finish_pending(initiator, sid, /*ok=*/false, /*timed_out=*/true);
      },
      kTimeoutEvent);
  pending_[initiator].emplace(sid, std::move(pending));

  send_forward(initiator, relays.front(), kTypeConstruct, sid, 0, onion_blob);
  return sid;
}

void AnonRouter::finish_pending(NodeId initiator, StreamId sid, bool ok,
                                bool timed_out) {
  auto& pmap = pending_[initiator];
  const auto it = pmap.find(sid);
  if (it == pmap.end()) return;
  if (!timed_out) simulator_.cancel(it->second.timeout_event);
  const char* span = it->second.span;
  ConstructCallback cb = std::move(it->second.callback);
  pmap.erase(it);
  (ok ? construct_ok_ctr_ : construct_timeout_ctr_)->inc();
  auto& tracer = obs::Tracer::instance();
  if (tracer.enabled()) {
    obs::TraceArgs args;
    args.add("ok", static_cast<std::uint64_t>(ok ? 1 : 0))
        .add("timed_out", static_cast<std::uint64_t>(timed_out ? 1 : 0));
    tracer.span_end("anon", span, sid, args);
  }
  cb(ok);
}

void AnonRouter::record_peel_failure(NodeId node, const char* where) {
  ++peel_failures_;
  peel_failures_ctr_->inc();
  auto& tracer = obs::Tracer::instance();
  if (tracer.enabled()) {
    obs::TraceArgs args;
    args.add("node", static_cast<std::uint64_t>(node)).add("where", where);
    tracer.instant("anon", "peel_fail", obs::current_correlation(), args);
  }
}

void AnonRouter::register_reverse_handler(NodeId initiator, StreamId sid,
                                          ReverseHandler handler) {
  reverse_handlers_[initiator][sid] = std::move(handler);
}

void AnonRouter::unregister_reverse_handler(NodeId initiator, StreamId sid) {
  reverse_handlers_[initiator].erase(sid);
}

void AnonRouter::send_payload(NodeId initiator, StreamId sid,
                              NodeId first_relay, std::uint64_t seq,
                              Bytes blob, SegmentPriority priority) {
  send_forward(initiator, first_relay, kTypePayload, sid, seq, blob,
               priority);
}

void AnonRouter::send_teardown(NodeId initiator, StreamId sid,
                               NodeId first_relay) {
  send_forward(initiator, first_relay, kTypeTeardown, sid, 0, {});
}

// --- receive paths -------------------------------------------------------------------

void AnonRouter::handle_forward(NodeId from, NodeId to, ByteView payload) {
  if (payload.size() < 9) return;
  const std::uint8_t type = payload[0];
  const StreamId sid = get_u64be(payload, 1);
  switch (type) {
    case kTypeConstruct:
      on_construct(from, to, sid, payload.subspan(9));
      break;
    case kTypePayload: {
      if (payload.size() < 17) return;
      const std::uint64_t seq = get_u64be(payload, 9);
      if (config_.overload.enabled) {
        if (payload.size() < 18) return;
        const auto priority = static_cast<SegmentPriority>(payload[17]);
        on_payload(from, to, sid, seq, payload.subspan(18), priority);
      } else {
        on_payload(from, to, sid, seq, payload.subspan(17),
                   SegmentPriority::kInteractive);
      }
      break;
    }
    case kTypeTeardown:
      on_teardown(to, sid);
      break;
    case kTypeRetarget: {
      if (payload.size() < 17) return;
      const std::uint64_t seq = get_u64be(payload, 9);
      on_retarget(to, sid, seq, payload.subspan(17));
      break;
    }
    case kTypeConstructPayload: {
      if (payload.size() < 17) return;
      const std::uint64_t seq = get_u64be(payload, 9);
      on_construct_payload(from, to, sid, seq, payload.subspan(17));
      break;
    }
    default:
      break;
  }
}

void AnonRouter::handle_reverse(NodeId from, NodeId to, ByteView payload) {
  (void)from;
  if (payload.size() < 9) return;
  const std::uint8_t type = payload[0];
  const StreamId sid = get_u64be(payload, 1);
  switch (type) {
    case kTypeConstructAck: {
      if (payload.size() < 10) return;
      on_construct_ack(to, sid, payload[9] != 0);
      break;
    }
    case kTypePayloadRev: {
      if (payload.size() < 17) return;
      const std::uint64_t seq = get_u64be(payload, 9);
      on_payload_rev(to, sid, seq, payload.subspan(17));
      break;
    }
    case kTypeBackpressure: {
      if (payload.size() < 10) return;
      on_backpressure(to, sid, payload[9]);
      break;
    }
    default:
      break;
  }
}

// --- overload machinery ------------------------------------------------------

double AnonRouter::drain_load(NodeId node) {
  NodeLoad& load = load_[node];
  const SimTime now = simulator_.now();
  if (now > load.last_drain) {
    const double drained = config_.overload.drain_rate_per_s *
                           (static_cast<double>(now - load.last_drain) /
                            static_cast<double>(kSecond));
    load.level = std::max(0.0, load.level - drained);
  }
  load.last_drain = now;
  return load.level;
}

void AnonRouter::charge_load(NodeId node) { load_[node].level += 1.0; }

bool AnonRouter::should_shed(NodeId node, SegmentPriority priority) {
  const auto& ovl = config_.overload;
  const double level = load_[node].level;
  const double cap = static_cast<double>(ovl.relay_queue_capacity);
  if (priority == SegmentPriority::kControl) return false;  // never
  if (!ovl.shedding) return level >= cap;  // priority-blind tail drop
  // Graded thresholds: bulk gives way first, interactive only when the
  // queue is effectively full.
  switch (priority) {
    case SegmentPriority::kBulk: return level >= 0.70 * cap;
    case SegmentPriority::kStreaming: return level >= 0.85 * cap;
    case SegmentPriority::kInteractive: return level >= 0.97 * cap;
    case SegmentPriority::kControl: return false;
  }
  return false;
}

void AnonRouter::count_shed(SegmentPriority priority) {
  shed_ctrs_[static_cast<std::size_t>(priority) & 3]->inc();
}

void AnonRouter::signal_backpressure(NodeId node, NodeId upstream,
                                     StreamId upstream_sid,
                                     SegmentPriority priority) {
  backpressure_ctr_->inc();
  const Bytes cls(1, static_cast<std::uint8_t>(priority));
  send_reverse(node, upstream, kTypeBackpressure, upstream_sid, 0, cls);
}

void AnonRouter::on_backpressure(NodeId to, StreamId sid,
                                 std::uint8_t shed_class) {
  // Relay on the path: map downstream sid -> upstream sid and pass it on
  // (same plain-frame chain ConstructAck rides).
  RelayEntry* entry = tables_[to].find_by_downstream(sid);
  if (entry != nullptr) {
    const Bytes cls(1, shed_class);
    send_reverse(to, entry->upstream, kTypeBackpressure, entry->upstream_sid,
                 0, cls);
    return;
  }
  // Initiator: surface the signal to the session owning this path.
  const auto it = reverse_handlers_[to].find(sid);
  if (it == reverse_handlers_[to].end()) return;
  ReverseDelivery delivery;
  delivery.sid = sid;
  delivery.backpressure = true;
  delivery.shed_class = shed_class;
  it->second(delivery);
}

AnonRouter::OverloadStats AnonRouter::overload_stats(SimTime now) const {
  OverloadStats stats;
  stats.capacity = config_.overload.relay_queue_capacity;
  if (!config_.overload.enabled) return stats;
  const double hot = 0.70 * static_cast<double>(stats.capacity);
  for (NodeId node = 0; node < load_.size(); ++node) {
    const double level = relay_queue_level(node, now);
    stats.total_level += level;
    stats.max_level = std::max(stats.max_level, level);
    if (level >= hot) ++stats.hot_nodes;
  }
  return stats;
}

double AnonRouter::relay_queue_level(NodeId node, SimTime now) const {
  const NodeLoad& load = load_[node];
  if (now <= load.last_drain) return load.level;
  const double drained = config_.overload.drain_rate_per_s *
                         (static_cast<double>(now - load.last_drain) /
                          static_cast<double>(kSecond));
  return std::max(0.0, load.level - drained);
}

void AnonRouter::on_construct(NodeId from, NodeId to, StreamId sid,
                              ByteView onion_blob) {
  if (config_.overload.enabled) {
    const double level = drain_load(to);
    if (config_.overload.admission_control &&
        level >= config_.overload.admission_threshold *
                     static_cast<double>(
                         config_.overload.relay_queue_capacity)) {
      // Saturated: refuse the path before installing any state. Status 0
      // rides the existing ConstructAck chain back to the initiator, whose
      // session retries elsewhere with its normal backoff.
      admission_rejects_ctr_->inc();
      Bytes status(1, 0);
      send_reverse(to, from, kTypeConstructAck, sid, 0, status);
      return;
    }
    charge_load(to);  // construct processing occupies the queue too
  }
  const bool traced = obs::Tracer::instance().enabled();
  std::optional<HopRelaySpan> hop_span;
  if (traced) hop_span.emplace(to, "construct");
  const auto peeled = onion_.peel_path_onion(node_keys_[to], onion_blob);
  // The next-hop check matters for codecs without authentication (the
  // statistical FastOnionCodec): a corrupted onion "peels" into garbage.
  if (!peeled.has_value() || peeled->hop.next >= node_keys_.size()) {
    record_peel_failure(to, "construct");
    return;
  }
  RelayEntry entry;
  entry.upstream = from;
  entry.upstream_sid = sid;
  entry.downstream = peeled->hop.next;
  entry.key = peeled->hop.relay_key;
  entry.last_relay = peeled->hop.last;
  const SimTime now = simulator_.now();
  const StreamId down_sid =
      tables_[to].install(std::move(entry), now, config_.state_ttl);
  ++messages_forwarded_;
  forwarded_ctr_->inc();

  if (peeled->hop.last) {
    // End of the forwarding path (§4.1): the construct message stops here;
    // confirm to the initiator along the cached upstream chain.
    Bytes status(1, 1);
    send_reverse(to, from, kTypeConstructAck, sid, 0, status);
  } else {
    send_forward(to, peeled->hop.next, kTypeConstruct, down_sid, 0,
                 peeled->rest);
  }
}

void AnonRouter::on_construct_ack(NodeId to, StreamId sid, bool ok) {
  // Am I a relay on this path? Then map downstream sid -> upstream sid.
  RelayEntry* entry = tables_[to].find_by_downstream(sid);
  if (entry != nullptr) {
    Bytes status(1, ok ? 1 : 0);
    send_reverse(to, entry->upstream, kTypeConstructAck, entry->upstream_sid,
                 0, status);
    return;
  }
  // Otherwise it may be addressed to me as the initiator.
  finish_pending(to, sid, ok, /*timed_out=*/false);
}

void AnonRouter::on_payload(NodeId from, NodeId to, StreamId sid,
                            std::uint64_t seq, ByteView blob,
                            SegmentPriority priority) {
  RelayEntry* entry = tables_[to].find_by_upstream(sid);
  if (entry == nullptr) {
    // First contact as the responder: the last relay has stripped every
    // layer, so `blob` should be a sealed core addressed to us. If it
    // opens, create the terminal ⊥ entry [P_L, sid_L, ⊥, R_{L+1}] (§4.4).
    const auto core = onion_.open_payload_core(node_keys_[to], blob);
    if (!core.has_value()) {
      record_peel_failure(to, "payload_core");
      return;
    }
    RelayEntry terminal;
    terminal.upstream = from;
    terminal.upstream_sid = sid;
    terminal.key = core->responder_key;
    tables_[to].install_terminal(std::move(terminal), simulator_.now(),
                                 config_.state_ttl);
    RelayEntry* installed = tables_[to].find_by_upstream(sid);
    deliver_to_responder(to, *installed, *core);
    return;
  }
  if (entry->at_responder) {
    // Follow-up message on an established stream.
    const auto core = onion_.open_payload_core(node_keys_[to], blob);
    if (!core.has_value()) {
      record_peel_failure(to, "payload_core");
      return;
    }
    deliver_to_responder(to, *entry, *core);
    return;
  }
  tables_[to].refresh(*entry, simulator_.now(), config_.state_ttl);
  if (config_.overload.enabled) {
    // Bounded relay queue: drain the leaky bucket, then either shed this
    // segment (before spending the peel) or charge it to the queue. The
    // drop is silent on the forward path — the initiator's segment
    // timeout covers it — but with backpressure on the relay tells the
    // upstream chain what class it shed.
    drain_load(to);
    if (should_shed(to, priority)) {
      count_shed(priority);
      if (config_.overload.backpressure) {
        signal_backpressure(to, entry->upstream, entry->upstream_sid,
                            priority);
      }
      return;
    }
    charge_load(to);
  }
  const bool traced = obs::Tracer::instance().enabled();
  std::optional<HopRelaySpan> hop_span;
  if (traced) hop_span.emplace(to, "payload");
  // Relay fast path: peel in place in a pooled buffer — zero heap
  // allocations per segment once the pool is warm.
  PooledBytes buf(pool_, blob.size());
  buf->assign(blob.begin(), blob.end());
  if (!onion_.unwrap_layer_in_place(entry->key, seq, *buf)) {
    record_peel_failure(to, "payload");
    return;
  }
  ++messages_forwarded_;
  forwarded_ctr_->inc();
  send_forward(to, entry->downstream, kTypePayload, entry->downstream_sid,
               seq, *buf, priority);
}

StreamId AnonRouter::new_initiator_sid(NodeId initiator) {
  StreamId sid;
  do {
    sid = rng_.next_u64();
  } while (sid == 0 || pending_[initiator].count(sid) > 0 ||
           reverse_handlers_[initiator].count(sid) > 0);
  return sid;
}

void AnonRouter::send_construct_with_payload(NodeId initiator, StreamId sid,
                                             NodeId first_relay,
                                             std::uint64_t seq,
                                             ByteView onion_blob,
                                             ByteView payload_blob) {
  Bytes combined;
  combined.reserve(4 + onion_blob.size() + payload_blob.size());
  put_u32be(combined, static_cast<std::uint32_t>(onion_blob.size()));
  append(combined, onion_blob);
  append(combined, payload_blob);
  send_forward(initiator, first_relay, kTypeConstructPayload, sid, seq,
               combined);
}

void AnonRouter::on_construct_payload(NodeId from, NodeId to, StreamId sid,
                                      std::uint64_t seq, ByteView blob) {
  if (blob.size() < 4) return;
  const std::size_t onion_len = get_u32be(blob, 0);
  if (blob.size() < 4 + onion_len) return;
  const ByteView onion_blob = blob.subspan(4, onion_len);
  const ByteView payload_blob = blob.subspan(4 + onion_len);

  if (config_.overload.enabled) {
    // Combined construct+payload is path (re)construction — control-plane
    // by classification, so it is charged to the queue but never shed
    // (shedding the retransmit vehicle would livelock recovery).
    drain_load(to);
    charge_load(to);
  }
  const bool traced = obs::Tracer::instance().enabled();
  std::optional<HopRelaySpan> hop_span;
  if (traced) hop_span.emplace(to, "construct_payload");
  const auto peeled = onion_.peel_path_onion(node_keys_[to], onion_blob);
  if (!peeled.has_value() || peeled->hop.next >= node_keys_.size()) {
    record_peel_failure(to, "construct_payload");
    return;
  }
  RelayEntry entry;
  entry.upstream = from;
  entry.upstream_sid = sid;
  entry.downstream = peeled->hop.next;
  entry.key = peeled->hop.relay_key;
  entry.last_relay = peeled->hop.last;
  const SimTime now = simulator_.now();
  const StreamId down_sid =
      tables_[to].install(std::move(entry), now, config_.state_ttl);
  ++messages_forwarded_;
  forwarded_ctr_->inc();

  PooledBytes inner(pool_, payload_blob.size());
  inner->assign(payload_blob.begin(), payload_blob.end());
  if (!onion_.unwrap_layer_in_place(peeled->hop.relay_key, seq, *inner)) {
    record_peel_failure(to, "construct_payload");
    return;
  }
  if (peeled->hop.last) {
    // Construction ends here (§4.1); the stripped payload carries on to
    // the responder as a normal payload message. It keeps the control
    // classification it travelled with.
    send_forward(to, peeled->hop.next, kTypePayload, down_sid, seq, *inner,
                 SegmentPriority::kControl);
  } else {
    PooledBytes combined(pool_, 4 + peeled->rest.size() + inner->size());
    put_u32be(*combined, static_cast<std::uint32_t>(peeled->rest.size()));
    append(*combined, peeled->rest);
    append(*combined, *inner);
    send_forward(to, peeled->hop.next, kTypeConstructPayload, down_sid, seq,
                 *combined);
  }
}

void AnonRouter::send_retarget(NodeId initiator, StreamId sid,
                               NodeId first_relay, std::uint64_t seq,
                               Bytes blob, SimDuration timeout,
                               ConstructCallback callback) {
  // The end-to-end confirmation reuses the construct-ack machinery keyed
  // by the initiator-side sid.
  obs::CorrelationScope corr_scope(sid);
  auto& tracer = obs::Tracer::instance();
  if (tracer.enabled()) {
    obs::TraceArgs args;
    args.add("initiator", static_cast<std::uint64_t>(initiator));
    tracer.span_begin("anon", "retarget", sid, args);
  }
  static const auto kTimeoutEvent =
      obs::capacity::event_type("router.timeout");
  PendingConstruction pending;
  pending.callback = std::move(callback);
  pending.span = "retarget";
  pending.timeout_event = simulator_.schedule_after(
      timeout,
      [this, initiator, sid] {
        finish_pending(initiator, sid, /*ok=*/false, /*timed_out=*/true);
      },
      kTimeoutEvent);
  pending_[initiator][sid] = std::move(pending);
  send_forward(initiator, first_relay, kTypeRetarget, sid, seq, blob);
}

void AnonRouter::on_retarget(NodeId to, StreamId sid, std::uint64_t seq,
                             ByteView blob) {
  RelayEntry* entry = tables_[to].find_by_upstream(sid);
  if (entry == nullptr || entry->at_responder) return;
  tables_[to].refresh(*entry, simulator_.now(), config_.state_ttl);
  const bool traced = obs::Tracer::instance().enabled();
  std::optional<HopRelaySpan> hop_span;
  if (traced) hop_span.emplace(to, "retarget");
  PooledBytes inner(pool_, blob.size());
  inner->assign(blob.begin(), blob.end());
  if (!onion_.unwrap_layer_in_place(entry->key, seq, *inner)) {
    record_peel_failure(to, "retarget");
    return;
  }
  ++messages_forwarded_;
  forwarded_ctr_->inc();
  if (!entry->last_relay) {
    send_forward(to, entry->downstream, kTypeRetarget, entry->downstream_sid,
                 seq, *inner);
    return;
  }
  // Last relay: the fully unwrapped blob is the 4-byte new destination.
  if (inner->size() != 4) {
    record_peel_failure(to, "retarget");
    return;
  }
  const NodeId new_destination = get_u32be(*inner, 0);
  if (new_destination >= node_keys_.size()) return;
  tables_[to].retarget(*entry, new_destination);
  Bytes status(1, 1);
  send_reverse(to, entry->upstream, kTypeConstructAck, entry->upstream_sid,
               0, status);
}

void AnonRouter::on_teardown(NodeId to, StreamId sid) {
  RelayEntry* entry = tables_[to].find_by_upstream(sid);
  if (entry == nullptr) return;
  const NodeId downstream = entry->downstream;
  const StreamId down_sid = entry->downstream_sid;
  const bool forward_on = !entry->last_relay && !entry->at_responder &&
                          downstream != kInvalidNode;
  tables_[to].release_by_upstream(sid);
  if (forward_on) {
    send_forward(to, downstream, kTypeTeardown, down_sid, 0, {});
  }
}

void AnonRouter::deliver_to_responder(NodeId responder, RelayEntry& entry,
                                      const PayloadCore& core_value) {
  const PayloadCore* core = &core_value;
  const SimTime now = simulator_.now();
  tables_[responder].refresh(entry, now, config_.state_ttl);

  // Segment authentication (corruption resilience): verify the tag before
  // trusting anything else in the core. The check is self-contained — the
  // auth key derives from the core's own R_{L+1}, so a flip anywhere in
  // the sealed core (the key, the erasure metadata, the digest, the
  // segment bytes, or the tag itself) invalidates it.
  const bool tagged = core->auth_flags == PayloadCore::kAuthTagged;
  bool tag_verified = false;
  if (tagged) {
    const auto auth_key =
        crypto::derive_segment_auth_key(core->responder_key);
    const auto expected = crypto::segment_tag(
        auth_key, core->message_id, core->segment_index, core->original_size,
        core->needed_segments, core->total_segments, core->message_digest,
        core->segment);
    tag_verified = crypto::segment_tag_equal(expected, core->auth_tag);
    (tag_verified ? auth_verified_ctr_ : auth_rejected_ctr_)->inc();
  }
  const bool trusted = !tagged || tag_verified;
  if (trusted) {
    entry.key = core->responder_key;  // R_{L+1} (idempotent per path)
  }

  auto& rmap = reassembly_[responder];
  auto [it, inserted] = rmap.try_emplace(core->message_id);
  Reassembly& reassembly = it->second;
  if (inserted) {
    // Reconstruction span: opened by the first arriving segment, closed on
    // delivery below or on TTL expiry in sweep(). Correlated by message id,
    // the same chain the initiator's send_message events ride on.
    auto& tracer = obs::Tracer::instance();
    if (tracer.enabled()) {
      obs::TraceArgs args;
      args.add("responder", static_cast<std::uint64_t>(responder))
          .add("needed", static_cast<std::uint64_t>(core->needed_segments))
          .add("total", static_cast<std::uint64_t>(core->total_segments));
      tracer.span_begin("anon", "reconstruct", core->message_id, args);
    }
  }
  // Erasure metadata comes from the first *trusted* core (every core in
  // legacy and digest modes; tag-verified ones in tagged mode). needed == 0
  // marks "not yet trusted" — parse_payload_core guarantees m >= 1.
  if (reassembly.needed == 0 && trusted) {
    reassembly.needed = core->needed_segments;
    reassembly.total = core->total_segments;
    reassembly.original_size = core->original_size;
  }
  if (core->auth_flags > reassembly.auth_flags) {
    reassembly.auth_flags = core->auth_flags;
  }
  if (tag_verified && !reassembly.digest_known) {
    reassembly.digest_known = true;
    reassembly.digest = core->message_digest;
  }
  if (core->auth_flags == PayloadCore::kAuthDigest) {
    // Tagless mode: no single core is trusted, so digests are ballots. The
    // validator later accepts any candidate — an oblivious byte-flipper
    // cannot steer SHA-256 onto a chosen value, so a decode matching any
    // ballot is the initiator's message (see DESIGN.md threat model).
    bool counted = false;
    for (auto& [digest, votes] : reassembly.digest_votes) {
      if (digest == core->message_digest) {
        ++votes;
        counted = true;
        break;
      }
    }
    if (!counted) reassembly.digest_votes.emplace_back(core->message_digest, 1);
  }
  reassembly.expires = now + config_.reassembly_ttl;

  if (tagged && !tag_verified) {
    // Quarantine: never admitted to direct reconstruction, but kept for
    // the digest-validated subset search — the flip may have landed in the
    // trailer while the segment bytes are intact. The arrival path is not
    // recorded for responses, and the initiator gets a corruption verdict
    // instead of an ack.
    bool known = false;
    for (const auto& seg : reassembly.quarantined) {
      if (seg.index == core->segment_index && seg.data == core->segment) {
        known = true;
        break;
      }
    }
    if (!known) {
      erasure::Segment seg;
      seg.index = core->segment_index;
      seg.data = core->segment;
      reassembly.quarantined.push_back(std::move(seg));
      reassembly.quarantined_sids.push_back(entry.upstream_sid);
    }
    responder_nack(responder, entry, core->message_id, core->segment_index);
    if (!reassembly.delivered && reassembly.needed > 0 &&
        reassembly.auth_flags != PayloadCore::kAuthNone) {
      try_authenticated_decode(responder, core->message_id, reassembly);
    }
    return;
  }

  // Track the arrival path for acks and responses (dedupe by sid).
  bool known_path = false;
  for (StreamId s : reassembly.arrival_sids) {
    if (s == entry.upstream_sid) {
      known_path = true;
      break;
    }
  }
  if (!known_path) reassembly.arrival_sids.push_back(entry.upstream_sid);

  // Store the segment unless it's a duplicate index. In auth modes a
  // tag-verified copy supersedes an unverified one (a clean retransmit
  // must not be shadowed by the corrupted original), and a conflicting
  // unverified duplicate is stashed as a quarantined alternate for the
  // subset search instead of being dropped.
  bool duplicate = false;
  for (std::size_t i = 0; i < reassembly.segments.size(); ++i) {
    erasure::Segment& seg = reassembly.segments[i];
    if (seg.index != core->segment_index) continue;
    duplicate = true;
    if (!reassembly.segment_verified[i]) {
      if (tag_verified) {
        seg.data = core->segment;
        reassembly.segment_verified[i] = true;
        reassembly.segment_sids[i] = entry.upstream_sid;
      } else if (core->auth_flags != PayloadCore::kAuthNone &&
                 seg.data != core->segment) {
        erasure::Segment alternate;
        alternate.index = core->segment_index;
        alternate.data = core->segment;
        reassembly.quarantined.push_back(std::move(alternate));
        reassembly.quarantined_sids.push_back(entry.upstream_sid);
      }
    }
    break;
  }
  if (!duplicate) {
    erasure::Segment seg;
    seg.index = core->segment_index;
    seg.data = core->segment;
    reassembly.segments.push_back(std::move(seg));
    reassembly.segment_sids.push_back(entry.upstream_sid);
    reassembly.segment_verified.push_back(tag_verified);
  }

  if (config_.send_acks) {
    responder_ack(responder, entry, core->message_id, core->segment_index);
  }

  if (reassembly.delivered || reassembly.needed == 0) return;
  if (reassembly.auth_flags != PayloadCore::kAuthNone) {
    try_authenticated_decode(responder, core->message_id, reassembly);
    return;
  }
  if (reassembly.segments.size() >= reassembly.needed) {
    const auto& codec = codec_for(reassembly.needed, reassembly.total);
    auto decoded =
        codec.decode(reassembly.segments, reassembly.original_size);
    if (decoded.has_value()) {
      deliver_reconstructed(responder, core->message_id, reassembly,
                            std::move(*decoded));
    }
  }
}

bool AnonRouter::try_authenticated_decode(NodeId responder,
                                          MessageId message_id,
                                          Reassembly& reassembly) {
  const auto& codec = codec_for(reassembly.needed, reassembly.total);

  // Tagged mode, enough tag-verified segments: decode them directly. Every
  // input is authenticated, so this cannot yield wrong bytes.
  if (reassembly.digest_known) {
    std::vector<erasure::Segment> verified;
    for (std::size_t i = 0; i < reassembly.segments.size(); ++i) {
      if (reassembly.segment_verified[i]) {
        verified.push_back(reassembly.segments[i]);
      }
    }
    if (verified.size() >= reassembly.needed) {
      auto decoded = codec.decode(verified, reassembly.original_size);
      if (decoded.has_value() &&
          crypto::message_digest(*decoded) == reassembly.digest) {
        deliver_reconstructed(responder, message_id, reassembly,
                              std::move(*decoded));
        return true;
      }
      // Unreachable short of a tag forgery; fall through to the search.
    }
  } else if (reassembly.digest_votes.empty()) {
    return false;  // no trusted digest and no ballots: nothing to validate
  }

  // Digest-validated subset search over everything received, quarantined
  // alternates included (their tags failed, but the damage may have been
  // confined to the trailer). The decoder never returns unvalidated
  // plaintext: a candidate decode is delivered only when its digest
  // matches the trusted digest (tagged mode) or any ballot (digest mode).
  std::vector<erasure::Segment> pool;
  std::vector<StreamId> pool_sids;
  std::size_t admitted = reassembly.segments.size();
  pool.reserve(admitted + reassembly.quarantined.size());
  pool_sids.reserve(admitted + reassembly.quarantined.size());
  for (std::size_t i = 0; i < admitted; ++i) {
    pool.push_back(reassembly.segments[i]);
    pool_sids.push_back(reassembly.segment_sids[i]);
  }
  for (std::size_t i = 0; i < reassembly.quarantined.size(); ++i) {
    pool.push_back(reassembly.quarantined[i]);
    pool_sids.push_back(reassembly.quarantined_sids[i]);
  }
  if (pool.size() < reassembly.needed) return false;

  const erasure::DecodeValidator validate = [&](ByteView message) {
    const auto digest = crypto::message_digest(message);
    if (reassembly.digest_known) return digest == reassembly.digest;
    for (const auto& [candidate, votes] : reassembly.digest_votes) {
      if (candidate == digest) return true;
    }
    return false;
  };
  auto result =
      erasure::verified_decode(codec, pool, reassembly.original_size,
                               validate, config_.max_decode_subsets);
  if (!result.has_value()) {
    auth_fallback_failed_ctr_->inc();
    return false;
  }
  auth_fallback_ok_ctr_->inc();

  // Error location: every admitted segment proven corrupted earns its
  // arrival path a corruption verdict. Quarantined alternates were already
  // nacked on arrival — no double jeopardy.
  std::vector<std::uint32_t> to_nack;
  for (std::uint32_t index : result->corrupted_indices) {
    for (std::size_t i = 0; i < admitted; ++i) {
      if (pool[i].index == index) {
        to_nack.push_back(index);
        break;
      }
    }
  }
  nack_segments(responder, message_id, to_nack, pool, pool_sids);
  deliver_reconstructed(responder, message_id, reassembly,
                        std::move(result->message));
  return true;
}

void AnonRouter::deliver_reconstructed(NodeId responder, MessageId message_id,
                                       Reassembly& reassembly,
                                       Bytes message) {
  reassembly.delivered = true;
  reconstructions_ctr_->inc();
  reconstruct_segments_->record(reassembly.segments.size());
  auto& tracer = obs::Tracer::instance();
  if (tracer.enabled()) {
    obs::TraceArgs args;
    args.add("status", "delivered")
        .add("segments_used",
             static_cast<std::uint64_t>(reassembly.segments.size()));
    tracer.span_end("anon", "reconstruct", message_id, args);
  }
  if (message_handler_) {
    ReceivedMessage received;
    received.responder = responder;
    received.message_id = message_id;
    received.data = std::move(message);
    received.segments_received = reassembly.segments.size();
    received.reconstructed_at = simulator_.now();
    message_handler_(received);
  }
}

void AnonRouter::nack_segments(NodeId responder, MessageId message_id,
                               const std::vector<std::uint32_t>& indices,
                               const std::vector<erasure::Segment>& pool,
                               const std::vector<StreamId>& pool_sids) {
  for (std::uint32_t index : indices) {
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (pool[i].index != index) continue;
      RelayEntry* entry = tables_[responder].find_by_upstream(pool_sids[i]);
      if (entry != nullptr) {
        responder_nack(responder, *entry, message_id, index);
      }
      break;
    }
  }
}

void AnonRouter::responder_ack(NodeId responder, RelayEntry& entry,
                               MessageId message_id,
                               std::uint32_t segment_index) {
  ReverseCore ack;
  ack.type = ReverseCore::Type::kAck;
  ack.message_id = message_id;
  ack.segment_index = segment_index;
  const std::uint64_t seq = entry.reverse_seq++;
  const Bytes wrapped = onion_.wrap_layer(
      entry.key, seq | kReverseBit, serialize_reverse_core(ack));
  send_reverse(responder, entry.upstream, kTypePayloadRev, entry.upstream_sid,
               seq, wrapped);
}

void AnonRouter::responder_nack(NodeId responder, RelayEntry& entry,
                                MessageId message_id,
                                std::uint32_t segment_index) {
  // Framed and sealed exactly like responder_ack. Note the key caveat: on
  // a first-contact arrival whose flip landed in R_{L+1} itself, entry.key
  // holds the corrupted key and the nack is garbage to the initiator — it
  // drops on parse and the segment timeout covers the evidence instead.
  ReverseCore nack;
  nack.type = ReverseCore::Type::kCorruptNack;
  nack.message_id = message_id;
  nack.segment_index = segment_index;
  const std::uint64_t seq = entry.reverse_seq++;
  const Bytes wrapped = onion_.wrap_layer(
      entry.key, seq | kReverseBit, serialize_reverse_core(nack));
  send_reverse(responder, entry.upstream, kTypePayloadRev, entry.upstream_sid,
               seq, wrapped);
  auth_nacks_ctr_->inc();
}

void AnonRouter::on_payload_rev(NodeId to, StreamId sid, std::uint64_t seq,
                                ByteView blob) {
  // Relay case: message came addressed with my downstream sid; add my
  // layer and pass it upstream.
  RelayEntry* entry = tables_[to].find_by_downstream(sid);
  if (entry != nullptr) {
    tables_[to].refresh(*entry, simulator_.now(), config_.state_ttl);
    const bool traced = obs::Tracer::instance().enabled();
    std::optional<HopRelaySpan> hop_span;
    if (traced) hop_span.emplace(to, "reverse");
    // Reverse relay fast path: add this hop's layer in place.
    PooledBytes buf(pool_, blob.size() + onion_.layer_overhead());
    buf->assign(blob.begin(), blob.end());
    onion_.wrap_layer_in_place(entry->key, seq | kReverseBit, *buf);
    ++messages_forwarded_;
    forwarded_ctr_->inc();
    send_reverse(to, entry->upstream, kTypePayloadRev, entry->upstream_sid,
                 seq, *buf);
    return;
  }
  // Initiator case: hand the blob to the session owning this path.
  const auto it = reverse_handlers_[to].find(sid);
  if (it == reverse_handlers_[to].end()) return;
  ReverseDelivery delivery;
  delivery.sid = sid;
  delivery.seq = seq;
  delivery.blob = blob;
  it->second(delivery);
}

bool AnonRouter::send_response(NodeId responder, MessageId message_id,
                               ByteView data) {
  auto& rmap = reassembly_[responder];
  const auto it = rmap.find(message_id);
  if (it == rmap.end() || !it->second.delivered) return false;
  Reassembly& reassembly = it->second;

  const auto& codec = codec_for(reassembly.needed, reassembly.total);
  const auto segments = codec.encode(data);

  // Round-robin the coded response segments over the arrival paths, as the
  // paper's responder sends them "back over the k paths".
  std::vector<RelayEntry*> paths;
  for (StreamId sid : reassembly.arrival_sids) {
    RelayEntry* entry = tables_[responder].find_by_upstream(sid);
    if (entry != nullptr) paths.push_back(entry);
  }
  if (paths.empty()) return false;

  const std::uint32_t response_id = reassembly.next_response_id++;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    RelayEntry* entry = paths[i % paths.size()];
    ReverseCore core;
    core.type = ReverseCore::Type::kResponseSegment;
    core.message_id = message_id;
    core.response_id = response_id;
    core.segment_index = segments[i].index;
    core.original_size = static_cast<std::uint32_t>(data.size());
    core.needed_segments = static_cast<std::uint16_t>(reassembly.needed);
    core.total_segments = static_cast<std::uint16_t>(reassembly.total);
    core.segment = segments[i].data;
    const std::uint64_t seq = entry->reverse_seq++;
    const Bytes wrapped = onion_.wrap_layer(
        entry->key, seq | kReverseBit, serialize_reverse_core(core));
    send_reverse(responder, entry->upstream, kTypePayloadRev,
                 entry->upstream_sid, seq, wrapped);
  }
  return true;
}

void AnonRouter::sweep() {
  const SimTime now = simulator_.now();
  for (auto& table : tables_) table.expire(now);
  for (NodeId node = 0; node < reassembly_.size(); ++node) {
    auto& rmap = reassembly_[node];
    for (auto it = rmap.begin(); it != rmap.end();) {
      if (it->second.expires <= now) {
        if (!it->second.delivered) {
          ++reassemblies_expired_;
          reassembly_expired_ctr_->inc();
          auto& tracer = obs::Tracer::instance();
          if (tracer.enabled()) {
            obs::TraceArgs args;
            args.add("status", "expired")
                .add("segments_received",
                     static_cast<std::uint64_t>(it->second.segments.size()));
            tracer.span_end("anon", "reconstruct", it->first, args);
          }
          if (reassembly_expiry_handler_) {
            reassembly_expiry_handler_(node, it->first);
          }
        }
        it = rmap.erase(it);
      } else {
        ++it;
      }
    }
  }
}

const erasure::Codec& AnonRouter::codec_for(std::size_t m, std::size_t n) {
  const auto key = std::make_pair(m, n);
  auto it = codecs_.find(key);
  if (it == codecs_.end()) {
    it = codecs_.emplace(key, erasure::make_codec(m, n)).first;
  }
  return *it->second;
}

std::size_t AnonRouter::path_state_count(NodeId node) const {
  return tables_[node].size();
}

std::size_t AnonRouter::pending_construction_count(NodeId node) const {
  return pending_[node].size();
}

std::size_t AnonRouter::reverse_handler_count(NodeId node) const {
  return reverse_handlers_[node].size();
}

std::size_t AnonRouter::reassembly_count(NodeId node) const {
  return reassembly_[node].size();
}

void AnonRouter::byte_census(obs::capacity::ByteCensus& census) const {
  std::uint64_t table_bytes = obs::capacity::vector_bytes(tables_);
  for (const PathStateTable& table : tables_) {
    table_bytes += table.memory_bytes();
  }
  census.add("router", "path_state_tables", table_bytes);

  std::uint64_t pending_bytes = obs::capacity::vector_bytes(pending_);
  for (const auto& map : pending_) {
    pending_bytes += obs::capacity::hash_map_bytes(map);
  }
  pending_bytes += obs::capacity::vector_bytes(reverse_handlers_);
  for (const auto& map : reverse_handlers_) {
    pending_bytes += obs::capacity::hash_map_bytes(map);
  }
  census.add("router", "pending_and_handlers", pending_bytes);

  std::uint64_t reassembly_bytes = obs::capacity::vector_bytes(reassembly_);
  for (const auto& map : reassembly_) {
    reassembly_bytes += obs::capacity::hash_map_bytes(map);
    for (const auto& [id, r] : map) {
      std::uint64_t held = 0;
      for (const auto& seg : r.segments) held += seg.data.capacity();
      for (const auto& seg : r.quarantined) held += seg.data.capacity();
      held += obs::capacity::vector_bytes(r.arrival_sids) +
              obs::capacity::vector_bytes(r.segment_sids) +
              obs::capacity::vector_bytes(r.quarantined_sids) +
              obs::capacity::vector_bytes(r.digest_votes);
      reassembly_bytes += held;
    }
  }
  census.add("router", "reassembly", reassembly_bytes);

  census.add("router", "node_keys",
             obs::capacity::vector_bytes(node_keys_));
  census.add("router", "buffer_pool", pool_.memory_bytes());
  // Largest single buffer the pool ever produced — burst regrowth past
  // the 16 KiB default used to be invisible here.
  census.add("router", "buffer_pool_high_water", pool_.high_water());
}

}  // namespace p2panon::anon
