#include "anon/buffer_pool.hpp"

#include <algorithm>

namespace p2panon::anon {

BufferPool::BufferPool(std::size_t default_capacity)
    : default_capacity_(default_capacity) {
  free_.reserve(kMaxIdle);
}

Bytes BufferPool::acquire(std::size_t size_hint) {
  const std::size_t want = std::max(size_hint, default_capacity_);
  if (!free_.empty()) {
    Bytes buf = std::move(free_.back());
    free_.pop_back();
    if (buf.capacity() < want) buf.reserve(want);
    return buf;
  }
  Bytes buf;
  buf.reserve(want);
  return buf;
}

void BufferPool::release(Bytes&& buf) {
  if (free_.size() >= kMaxIdle) return;  // let it free
  buf.clear();
  free_.push_back(std::move(buf));
}

}  // namespace p2panon::anon
