#include "anon/buffer_pool.hpp"

#include <algorithm>

namespace p2panon::anon {

BufferPool::BufferPool(std::size_t default_capacity, std::size_t max_capacity)
    : default_capacity_(default_capacity), max_capacity_(max_capacity) {
  free_.reserve(kMaxIdle);
}

Bytes BufferPool::acquire(std::size_t size_hint) {
  const std::size_t want = std::max(size_hint, default_capacity_);
  high_water_ = std::max(high_water_, want);
  if (!free_.empty()) {
    Bytes buf = std::move(free_.back());
    free_.pop_back();
    if (buf.capacity() < want) buf.reserve(want);
    return buf;
  }
  Bytes buf;
  buf.reserve(want);
  return buf;
}

void BufferPool::release(Bytes&& buf) {
  high_water_ = std::max(high_water_, buf.capacity());
  if (max_capacity_ > 0 && buf.capacity() > max_capacity_) return;  // too big
  if (free_.size() >= kMaxIdle) return;  // let it free
  buf.clear();
  free_.push_back(std::move(buf));
}

}  // namespace p2panon::anon
