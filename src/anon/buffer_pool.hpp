// Freelist buffer pool for the relay data plane.
//
// A relayed segment used to allocate a fresh Bytes at every hop (peel,
// re-wrap, forward). The pool keeps released buffers' capacity warm so the
// steady-state receive → peel/wrap-in-place → forward pipeline reuses the
// same few allocations forever: after warm-up, relaying performs zero heap
// allocations per segment (asserted in tests via common/alloc_probe).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace p2panon::anon {

class BufferPool {
 public:
  static constexpr std::size_t kDefaultCapacity = 16384;

  /// Buffers are pre-reserved to at least `default_capacity` so typical
  /// segments (8 KiB erasure segments + layer overheads fit well inside
  /// the default) never regrow. `max_capacity` (0 = uncapped) bounds the
  /// capacity the pool will *retain*: a burst can still grow a leased
  /// buffer arbitrarily (correctness over the cap), but oversized buffers
  /// are freed on release instead of staying warm on the freelist.
  explicit BufferPool(std::size_t default_capacity = kDefaultCapacity,
                      std::size_t max_capacity = 0);

  /// Returns an empty buffer with capacity >= max(size_hint, default).
  Bytes acquire(std::size_t size_hint = 0);

  /// Returns a buffer to the freelist; contents cleared, capacity kept.
  /// The freelist is bounded — beyond that buffers are simply freed.
  void release(Bytes&& buf);

  std::size_t idle() const { return free_.size(); }

  /// Largest single-buffer capacity this pool has ever handed out or taken
  /// back — the burst regrowth past default_capacity that used to be
  /// invisible. Surfaced in the router's byte census.
  std::size_t high_water() const { return high_water_; }
  std::size_t max_capacity() const { return max_capacity_; }

  /// Heap footprint of the idle freelist (warmed capacities included) for
  /// the capacity byte census.
  std::uint64_t memory_bytes() const {
    std::uint64_t total = free_.capacity() * sizeof(Bytes);
    for (const Bytes& buf : free_) total += buf.capacity();
    return total;
  }

 private:
  static constexpr std::size_t kMaxIdle = 64;

  std::size_t default_capacity_;
  std::size_t max_capacity_;
  std::size_t high_water_ = 0;
  std::vector<Bytes> free_;
};

/// RAII lease on a pool buffer; returns it on scope exit.
class PooledBytes {
 public:
  explicit PooledBytes(BufferPool& pool, std::size_t size_hint = 0)
      : pool_(&pool), buf_(pool.acquire(size_hint)) {}
  ~PooledBytes() { pool_->release(std::move(buf_)); }

  PooledBytes(const PooledBytes&) = delete;
  PooledBytes& operator=(const PooledBytes&) = delete;

  Bytes& get() { return buf_; }
  Bytes& operator*() { return buf_; }
  Bytes* operator->() { return &buf_; }

 private:
  BufferPool* pool_;
  Bytes buf_;
};

}  // namespace p2panon::anon
