// Onion construction and stripping (paper §4.1, §4.2).
//
// The OnionCodec builds and peels the two nested structures the protocols
// use:
//
//  * Path onions (§4.1): Path_i = <P_{i+1}, R_i, Path_{i+1}>_{PubKey_i},
//    terminated by a marker. Each relay peels one public-key layer and
//    learns only its successor and its symmetric key R_i.
//  * Payload onions (§4.2): the inner core <MID, Mp>_{R_{L+1}},
//    <R_{L+1}>_{PubKey_D} for the responder, wrapped in one symmetric
//    layer per relay: PayLoad_i = <PayLoad_{i+1}>_{R_i}. Relays strip
//    layers forward; on the reverse path they *add* layers, which the
//    initiator (knowing every R_i) strips all at once.
//
// Two interchangeable implementations:
//  * RealOnionCodec — X25519 sealed boxes + ChaCha20-Poly1305, the real
//    thing, used in examples, unit tests and the quickstart;
//  * FastOnionCodec — byte-layout-identical but with a non-cryptographic
//    keystream, used by the statistical benches where millions of layer
//    operations would otherwise dominate runtime. Sizes (and therefore all
//    bandwidth numbers) match RealOnionCodec exactly — asserted by tests.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/keys.hpp"
#include "crypto/segment_auth.hpp"

namespace p2panon::anon {

using RelayKey = crypto::ChaChaKey;  // the paper's R_i

/// One hop's plaintext inside a path onion.
struct PathHop {
  NodeId next = kInvalidNode;  // P_{i+1} (the responder for the last relay)
  RelayKey relay_key{};        // R_i
  bool last = false;           // Path_{i+1} == termination marker
};

/// The responder-facing core of a payload onion.
struct PayloadCore {
  /// auth_flags values. Any other value fails parsing — a single byte flip
  /// cannot turn one valid trailer shape into another without also breaking
  /// the exact-size check.
  static constexpr std::uint8_t kAuthNone = 0;    // legacy core, no trailer
  static constexpr std::uint8_t kAuthDigest = 1;  // [flags][digest]
  static constexpr std::uint8_t kAuthTagged = 3;  // [flags][digest][tag]

  MessageId message_id = 0;
  std::uint32_t segment_index = 0;
  std::uint32_t original_size = 0;  // |M| so the responder can truncate
  std::uint16_t needed_segments = 1;  // the paper's out-of-band m
  std::uint16_t total_segments = 1;   // n, so the responder picks the codec
  Bytes segment;                    // Mp
  RelayKey responder_key{};         // R_{L+1}, for the reverse path

  // Corruption-resilience trailer (absent on the wire when auth_flags ==
  // kAuthNone, which keeps legacy cores byte-identical). The digest is the
  // truncated SHA-256 of the whole message M; the tag authenticates this
  // segment plus every header field the decoder will trust (see
  // crypto/segment_auth.hpp).
  std::uint8_t auth_flags = kAuthNone;
  crypto::MessageDigest message_digest{};
  crypto::SegmentTag auth_tag{};
};

class OnionCodec {
 public:
  virtual ~OnionCodec() = default;

  // --- path onions (§4.1) ---

  /// Builds the nested path onion for `relays` terminating at `responder`.
  /// `relay_keys[i]` is R_i for relays[i]. Layer i is sealed to
  /// directory.public_key(relays[i]).
  virtual Bytes build_path_onion(const std::vector<NodeId>& relays,
                                 const std::vector<RelayKey>& relay_keys,
                                 NodeId responder,
                                 const crypto::KeyDirectory& directory,
                                 Rng& rng) const = 0;

  /// Relay-side peel: opens the outer layer with `self`'s keypair,
  /// returning this hop's info and the remaining onion (empty when last).
  struct PeeledPath {
    PathHop hop;
    Bytes rest;
  };
  virtual std::optional<PeeledPath> peel_path_onion(
      const crypto::KeyPair& self, ByteView onion) const = 0;

  // --- payload onions (§4.2) ---

  /// Seals the responder core with the responder's public key + R_{L+1}.
  virtual Bytes seal_payload_core(const PayloadCore& core,
                                  const crypto::X25519Key& responder_public,
                                  Rng& rng) const = 0;

  virtual std::optional<PayloadCore> open_payload_core(
      const crypto::KeyPair& responder, ByteView sealed) const = 0;

  /// One symmetric layer; `seq` must be unique per (key, direction).
  virtual Bytes wrap_layer(const RelayKey& key, std::uint64_t seq,
                           ByteView inner) const = 0;
  virtual std::optional<Bytes> unwrap_layer(const RelayKey& key,
                                            std::uint64_t seq,
                                            ByteView outer) const = 0;

  /// In-place layer ops — the relay fast path. wrap grows `buf` by
  /// layer_overhead() and seals it in place; unwrap authenticates, strips
  /// the layer and shrinks `buf` (returning false with `buf` unchanged on
  /// failure). Byte outputs are identical to the allocating forms. When
  /// `buf` has spare capacity (e.g. a BufferPool lease) neither op touches
  /// the heap; the base-class defaults delegate to the allocating forms so
  /// other codecs stay correct without overriding.
  virtual void wrap_layer_in_place(const RelayKey& key, std::uint64_t seq,
                                   Bytes& buf) const;
  virtual bool unwrap_layer_in_place(const RelayKey& key, std::uint64_t seq,
                                     Bytes& buf) const;

  /// Per-layer ciphertext expansion in bytes (for bandwidth math).
  virtual std::size_t layer_overhead() const = 0;
  /// Sealed-core expansion over the serialized PayloadCore.
  virtual std::size_t core_overhead() const = 0;

  virtual std::string name() const = 0;
};

/// X25519 + ChaCha20-Poly1305 implementation.
class RealOnionCodec final : public OnionCodec {
 public:
  Bytes build_path_onion(const std::vector<NodeId>& relays,
                         const std::vector<RelayKey>& relay_keys,
                         NodeId responder,
                         const crypto::KeyDirectory& directory,
                         Rng& rng) const override;
  std::optional<PeeledPath> peel_path_onion(const crypto::KeyPair& self,
                                            ByteView onion) const override;
  Bytes seal_payload_core(const PayloadCore& core,
                          const crypto::X25519Key& responder_public,
                          Rng& rng) const override;
  std::optional<PayloadCore> open_payload_core(
      const crypto::KeyPair& responder, ByteView sealed) const override;
  Bytes wrap_layer(const RelayKey& key, std::uint64_t seq,
                   ByteView inner) const override;
  std::optional<Bytes> unwrap_layer(const RelayKey& key, std::uint64_t seq,
                                    ByteView outer) const override;
  void wrap_layer_in_place(const RelayKey& key, std::uint64_t seq,
                           Bytes& buf) const override;
  bool unwrap_layer_in_place(const RelayKey& key, std::uint64_t seq,
                             Bytes& buf) const override;
  std::size_t layer_overhead() const override;
  std::size_t core_overhead() const override;
  std::string name() const override { return "real"; }
};

/// Size-faithful stand-in: identical layouts and overheads, keystream from
/// splitmix64 instead of ChaCha20, "sealed boxes" keyed on the recipient's
/// public key bytes instead of a DH. NOT SECURE — simulation throughput
/// only.
class FastOnionCodec final : public OnionCodec {
 public:
  Bytes build_path_onion(const std::vector<NodeId>& relays,
                         const std::vector<RelayKey>& relay_keys,
                         NodeId responder,
                         const crypto::KeyDirectory& directory,
                         Rng& rng) const override;
  std::optional<PeeledPath> peel_path_onion(const crypto::KeyPair& self,
                                            ByteView onion) const override;
  Bytes seal_payload_core(const PayloadCore& core,
                          const crypto::X25519Key& responder_public,
                          Rng& rng) const override;
  std::optional<PayloadCore> open_payload_core(
      const crypto::KeyPair& responder, ByteView sealed) const override;
  Bytes wrap_layer(const RelayKey& key, std::uint64_t seq,
                   ByteView inner) const override;
  std::optional<Bytes> unwrap_layer(const RelayKey& key, std::uint64_t seq,
                                    ByteView outer) const override;
  void wrap_layer_in_place(const RelayKey& key, std::uint64_t seq,
                           Bytes& buf) const override;
  bool unwrap_layer_in_place(const RelayKey& key, std::uint64_t seq,
                             Bytes& buf) const override;
  std::size_t layer_overhead() const override;
  std::size_t core_overhead() const override;
  std::string name() const override { return "fast"; }
};

/// Serialization shared by both codecs (exposed for tests).
Bytes serialize_path_hop(const PathHop& hop, ByteView rest);
std::optional<OnionCodec::PeeledPath> parse_path_hop(ByteView plain);
Bytes serialize_payload_core(const PayloadCore& core);
std::optional<PayloadCore> parse_payload_core(ByteView plain);

}  // namespace p2panon::anon
