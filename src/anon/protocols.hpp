// The three anonymity protocols evaluated in the paper, as Session
// parameterizations sharing all machinery:
//
//   CurMix       — current mix-based protocols: one onion path, one copy.
//   SimRep(r)    — simple replication: r full copies over k = r disjoint
//                  paths (m = 1, n = r).
//   SimEra(k, r) — simple erasure coding: k disjoint paths, replication
//                  factor r = n/m, one coded segment of size |M| * r / k
//                  per path (m = k/r, n = k; requires r | k). Tolerates
//                  k(1 - 1/r) path failures.
//
// Each comes in random and biased mix-choice variants (§4.9).
#pragma once

#include <string>

#include "anon/session.hpp"

namespace p2panon::anon {

enum class ProtocolKind { kCurMix, kSimRep, kSimEra };

struct ProtocolSpec {
  ProtocolKind kind = ProtocolKind::kCurMix;
  std::size_t k = 1;  // paths (SimRep: k == r)
  std::size_t r = 1;  // replication factor
  MixChoice mix = MixChoice::kRandom;

  std::string name() const;

  /// Lowers the spec onto a SessionConfig (path length L, timeouts etc.
  /// come from `base`; erasure params and mix choice are overwritten).
  SessionConfig session_config(SessionConfig base = {}) const;

  static ProtocolSpec curmix(MixChoice mix);
  static ProtocolSpec simrep(std::size_t r, MixChoice mix);
  static ProtocolSpec simera(std::size_t k, std::size_t r, MixChoice mix);
};

}  // namespace p2panon::anon
