#include "anon/path_state.hpp"

namespace p2panon::anon {

StreamId PathStateTable::fresh_sid() {
  while (true) {
    const StreamId sid = rng_.next_u64();
    if (sid != 0 && by_upstream_.count(sid) == 0 &&
        downstream_to_upstream_.count(sid) == 0) {
      return sid;
    }
  }
}

StreamId PathStateTable::install(RelayEntry entry, SimTime now,
                                 SimDuration ttl) {
  entry.downstream_sid = fresh_sid();
  entry.expires = now + ttl;
  const StreamId down = entry.downstream_sid;
  downstream_to_upstream_[down] = entry.upstream_sid;
  by_upstream_[entry.upstream_sid] = std::move(entry);
  return down;
}

void PathStateTable::install_terminal(RelayEntry entry, SimTime now,
                                      SimDuration ttl) {
  entry.downstream = kInvalidNode;
  entry.downstream_sid = 0;
  entry.at_responder = true;
  entry.expires = now + ttl;
  by_upstream_[entry.upstream_sid] = std::move(entry);
}

RelayEntry* PathStateTable::find_by_upstream(StreamId upstream_sid) {
  const auto it = by_upstream_.find(upstream_sid);
  return it == by_upstream_.end() ? nullptr : &it->second;
}

RelayEntry* PathStateTable::find_by_downstream(StreamId downstream_sid) {
  const auto it = downstream_to_upstream_.find(downstream_sid);
  if (it == downstream_to_upstream_.end()) return nullptr;
  return find_by_upstream(it->second);
}

void PathStateTable::refresh(RelayEntry& entry, SimTime now,
                             SimDuration ttl) {
  entry.expires = now + ttl;
}

StreamId PathStateTable::retarget(RelayEntry& entry, NodeId new_downstream) {
  if (entry.downstream_sid != 0) {
    downstream_to_upstream_.erase(entry.downstream_sid);
  }
  entry.downstream = new_downstream;
  entry.downstream_sid = fresh_sid();
  downstream_to_upstream_[entry.downstream_sid] = entry.upstream_sid;
  return entry.downstream_sid;
}

bool PathStateTable::release_by_upstream(StreamId upstream_sid) {
  const auto it = by_upstream_.find(upstream_sid);
  if (it == by_upstream_.end()) return false;
  if (it->second.downstream_sid != 0) {
    downstream_to_upstream_.erase(it->second.downstream_sid);
  }
  by_upstream_.erase(it);
  return true;
}

std::size_t PathStateTable::expire(SimTime now) {
  std::size_t removed = 0;
  for (auto it = by_upstream_.begin(); it != by_upstream_.end();) {
    if (it->second.expires <= now) {
      if (it->second.downstream_sid != 0) {
        downstream_to_upstream_.erase(it->second.downstream_sid);
      }
      it = by_upstream_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace p2panon::anon
