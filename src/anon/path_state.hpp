// Relay-side cached path state with TTL (paper §4.3, §4.4).
//
// Each relay on a path caches [P_{i-1}, sid_{i-1}, P_{i+1}, sid_i, R_i].
// Payload traffic refreshes the TTL; states orphaned by upstream failures
// expire and are reclaimed, which is the paper's answer to resource
// depletion from un-releasable paths.
//
// One PathStateTable exists per node. Forward traffic is looked up by the
// upstream stream id, reverse traffic by the downstream stream id.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "crypto/chacha20.hpp"

namespace p2panon::anon {

struct RelayEntry {
  NodeId upstream = kInvalidNode;
  StreamId upstream_sid = 0;
  NodeId downstream = kInvalidNode;  // next relay, or the responder for the
                                     // last relay; kInvalidNode at the
                                     // responder's own terminal entry
  StreamId downstream_sid = 0;
  crypto::ChaChaKey key{};           // R_i (R_{L+1} at the responder)
  bool last_relay = false;           // downstream is the responder
  bool at_responder = false;         // this is the responder's ⊥ entry
  SimTime expires = kNeverTime;
  std::uint64_t reverse_seq = 0;     // responder's reverse-nonce counter
};

class PathStateTable {
 public:
  explicit PathStateTable(Rng rng) : rng_(rng) {}

  /// Installs an entry, generating a fresh downstream stream id (unique
  /// within this node). Returns the downstream sid.
  StreamId install(RelayEntry entry, SimTime now, SimDuration ttl);

  /// Installs the responder's terminal entry keyed by the upstream sid
  /// (no downstream sid is generated).
  void install_terminal(RelayEntry entry, SimTime now, SimDuration ttl);

  RelayEntry* find_by_upstream(StreamId upstream_sid);
  RelayEntry* find_by_downstream(StreamId downstream_sid);

  /// Extends an entry's TTL (payload messages double as refreshes).
  void refresh(RelayEntry& entry, SimTime now, SimDuration ttl);

  /// Path reuse (§4.4): re-points an entry at a new downstream node,
  /// generating a fresh downstream stream id (the paper's sid'_L).
  /// Returns the new downstream sid.
  StreamId retarget(RelayEntry& entry, NodeId new_downstream);

  /// Removes the entry with this upstream sid (explicit teardown).
  bool release_by_upstream(StreamId upstream_sid);

  /// Drops all entries whose TTL has passed. Returns how many.
  std::size_t expire(SimTime now);

  std::size_t size() const { return by_upstream_.size(); }

  /// Estimated heap footprint of both lookup maps (bucket arrays plus one
  /// heap node per entry) for the capacity byte census.
  std::uint64_t memory_bytes() const {
    return map_bytes(by_upstream_) + map_bytes(downstream_to_upstream_);
  }

 private:
  template <typename Map>
  static std::uint64_t map_bytes(const Map& m) {
    return static_cast<std::uint64_t>(m.bucket_count()) * sizeof(void*) +
           static_cast<std::uint64_t>(m.size()) *
               (sizeof(typename Map::value_type) + 2 * sizeof(void*));
  }
  StreamId fresh_sid();

  Rng rng_;
  std::unordered_map<StreamId, RelayEntry> by_upstream_;
  std::unordered_map<StreamId, StreamId> downstream_to_upstream_;
};

}  // namespace p2panon::anon
