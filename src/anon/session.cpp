#include "anon/session.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace p2panon::anon {

namespace {
std::uint64_t pending_key(MessageId id, std::uint32_t segment) {
  return id ^ (static_cast<std::uint64_t>(segment) * 0x9e3779b97f4a7c15ULL);
}
}  // namespace

Session::Session(AnonRouter& router, const membership::NodeCache& cache,
                 NodeId initiator, NodeId responder, SessionConfig config,
                 Rng rng)
    : router_(router),
      cache_(cache),
      initiator_(initiator),
      responder_(responder),
      config_(config),
      rng_(rng),
      selector_(config.mix_choice, rng_.fork(),
                StalenessPolicy{config.staleness_aware,
                                config.staleness_stale_after,
                                config.staleness_degrade_fraction}),
      alive_(std::make_shared<bool>(true)) {
  config_.erasure.validate();
  obs::Registry& reg = router_.metrics();
  msgs_ctr_ = reg.counter("session_messages_total");
  construct_attempts_ctr_ = reg.counter("session_construct_attempts_total");
  seg_sent_ctr_ = reg.counter("session_segments_total", {{"event", "sent"}});
  seg_retx_ctr_ =
      reg.counter("session_segments_total", {{"event", "retransmit"}});
  seg_acked_ctr_ = reg.counter("session_segments_total", {{"event", "acked"}});
  seg_expired_ctr_ =
      reg.counter("session_segments_total", {{"event", "expired"}});
  path_failures_ctr_ = reg.counter("session_path_failures_total");
  nacks_rx_ctr_ = reg.counter("session_corrupt_nacks_total");
  susp_corrupt_ctr_ = reg.counter("membership_suspicion_reports_total",
                                  {{"evidence", "corrupt"}});
  susp_stall_ctr_ = reg.counter("membership_suspicion_reports_total",
                                {{"evidence", "stall"}});
  quarantined_gauge_ = reg.gauge("membership_suspicion_quarantined");
  rtt_us_ = reg.histogram("session_rtt_us");
  rto_us_ = reg.histogram("session_rto_us");
  shed_queue_ctr_ =
      reg.counter("session_sheds_total", {{"cause", "queue_full"}});
  shed_headroom_ctr_ =
      reg.counter("session_sheds_total", {{"cause", "bulk_headroom"}});
  shed_congested_ctr_ =
      reg.counter("session_sheds_total", {{"cause", "congested_path"}});
  bp_rx_ctr_ =
      reg.counter("session_backpressure_total", {{"event", "received"}});
  stall_suppressed_ctr_ = reg.counter("session_backpressure_total",
                                      {{"event", "stall_suppressed"}});
  if (config_.staleness_aware) {
    // Registered only when the mode is on, so default-off registries stay
    // byte-identical to the pre-feature baseline.
    stale_fallbacks_ctr_ = reg.counter("anon_mix_stale_fallbacks_total");
    biased_selects_ctr_ = reg.counter("anon_mix_biased_selects_total");
  }
  paths_.resize(config_.erasure.k);
  path_info_.resize(config_.erasure.k);
  path_health_.resize(config_.erasure.k);
  congested_until_.resize(config_.erasure.k, 0);
  last_backpressure_.resize(config_.erasure.k, 0);
  if (config_.adaptive_timeouts || config_.retry_backoff) {
    // Forked only when a new mode is on: fork() advances rng_, and the
    // default configuration must keep every existing draw in place.
    backoff_rng_ = rng_.fork();
  }
  if (config_.replace_threshold > 0.0) {
    predictor_task_ = std::make_unique<sim::PeriodicTask>(
        router_.simulator(), config_.replace_check_interval,
        [this] { check_predictors(); });
    predictor_task_->start();
  }
}

Session::~Session() {
  *alive_ = false;
  for (auto& pending : pending_segments_) {
    router_.simulator().cancel(pending.second.timeout_event);
  }
  for (const Path& path : paths_) {
    if (path.sid != 0) {
      router_.unregister_reverse_handler(initiator_, path.sid);
    }
  }
}

std::optional<std::vector<std::vector<NodeId>>> Session::select_relays(
    std::size_t paths, SimTime now, const std::vector<NodeId>& extra_exclude) {
  auto out = selector_.select_paths(cache_, paths, config_.path_length, now,
                                    initiator_, responder_, extra_exclude);
  // Mirror the selector's staleness tallies into the registry by delta, so
  // the counters track decisions (not calls) without the selector needing
  // a registry handle. Both pointers are null unless staleness_aware.
  if (stale_fallbacks_ctr_ != nullptr) {
    const std::uint64_t fallbacks = selector_.stale_fallbacks();
    if (fallbacks > mirrored_fallbacks_) {
      stale_fallbacks_ctr_->inc(fallbacks - mirrored_fallbacks_);
      mirrored_fallbacks_ = fallbacks;
    }
    const std::uint64_t biased = selector_.biased_selects();
    if (biased > mirrored_biased_) {
      biased_selects_ctr_->inc(biased - mirrored_biased_);
      mirrored_biased_ = biased;
    }
  }
  return out;
}

void Session::construct(ConstructHandler handler) {
  if (constructing_) {
    throw std::logic_error("Session::construct: already constructing");
  }
  construct_handler_ = std::move(handler);
  constructing_ = true;
  torn_down_ = false;
  construct_attempts_ = 0;
  attempt_construction();
}

void Session::attempt_construction() {
  ++construct_attempts_;
  construct_attempts_ctr_->inc();

  const SimTime now = router_.simulator().now();
  auto selected = select_relays(config_.erasure.k, now);
  if (!selected.has_value()) {
    // Cache too small right now; count the attempt and retry or give up.
    if (construct_attempts_ < config_.max_construct_attempts) {
      retry_construction();
      return;
    }
    constructing_ = false;
    construct_handler_(false, construct_attempts_);
    return;
  }

  attempt_outstanding_ = config_.erasure.k;
  for (std::size_t index = 0; index < config_.erasure.k; ++index) {
    Path& path = paths_[index];
    if (path.sid != 0) {
      router_.unregister_reverse_handler(initiator_, path.sid);
    }
    path = Path{};
    path.relays = (*selected)[index];
    path.relay_keys.reserve(path.relays.size());
    for (std::size_t i = 0; i < path.relays.size(); ++i) {
      path.relay_keys.push_back(crypto::random_symmetric_key(rng_));
    }
    path.responder_key = crypto::random_symmetric_key(rng_);
    path.state = PathState::kPending;
    sync_path_info(index);

    build_path(index, [this, index](bool ok) {
      Path& built = paths_[index];
      built.state = ok ? PathState::kEstablished : PathState::kFailed;
      sync_path_info(index);
      if (--attempt_outstanding_ == 0) finish_attempt();
    });
  }
}

void Session::build_path(std::size_t index, std::function<void(bool)> done) {
  Path& path = paths_[index];
  const SimTime started = router_.simulator().now();
  const StreamId sid = router_.initiate_path(
      initiator_, path.relays, path.relay_keys, responder_,
      config_.construct_timeout,
      [this, index, started, alive = alive_, done = std::move(done)](bool ok) {
        if (!*alive) return;
        if (ok && config_.adaptive_timeouts) {
          // Fresh relay set: restart the estimator, seeded by the
          // construction round trip over the very same relays.
          path_health_[index].rtt_valid = false;
          observe_rtt(index, router_.simulator().now() - started);
        }
        done(ok);
      });
  path.sid = sid;
  router_.register_reverse_handler(
      initiator_, sid,
      [this, index, alive = alive_](const ReverseDelivery& delivery) {
        if (!*alive) return;
        on_reverse(index, delivery);
      });
}

void Session::finish_attempt() {
  const std::size_t established = established_paths();
  const std::size_t target = config_.require_full_construction
                                 ? config_.erasure.k
                                 : config_.erasure.min_paths();
  if (established >= target) {
    constructing_ = false;
    construct_handler_(true, construct_attempts_);
    return;
  }
  if (config_.require_full_construction && established > 0) {
    if (construct_attempts_ >= config_.max_construct_attempts) {
      // Out of attempts: report whether the partial set is at least
      // viable by the paper's min_paths() criterion.
      constructing_ = false;
      construct_handler_(established >= config_.erasure.min_paths(),
                         construct_attempts_);
      return;
    }
    ++construct_attempts_;
    top_up_missing_paths();
    return;
  }
  // Whole-set retry with a fresh relay set (the paper's "another set of
  // relay nodes for another attempt").
  for (std::size_t index = 0; index < paths_.size(); ++index) {
    Path& path = paths_[index];
    if (path.state == PathState::kEstablished && path.sid != 0 &&
        !path.relays.empty()) {
      router_.send_teardown(initiator_, path.sid, path.relays.front());
    }
    if (path.sid != 0) {
      router_.unregister_reverse_handler(initiator_, path.sid);
      path.sid = 0;
    }
    path.state = PathState::kUnbuilt;
    sync_path_info(index);
  }
  if (construct_attempts_ < config_.max_construct_attempts) {
    retry_construction();
  } else {
    constructing_ = false;
    construct_handler_(false, construct_attempts_);
  }
}

void Session::top_up_missing_paths() {
  std::vector<std::size_t> missing;
  for (std::size_t index = 0; index < paths_.size(); ++index) {
    if (paths_[index].state != PathState::kEstablished) missing.push_back(index);
  }
  attempt_outstanding_ = missing.size();
  std::size_t started = 0;
  for (std::size_t index : missing) {
    // Exclude relays of every kept path (and of top-ups already started
    // this round, whose relays are in place by now) for disjointness.
    std::vector<NodeId> exclude;
    for (std::size_t j = 0; j < paths_.size(); ++j) {
      if (j == index) continue;
      if (paths_[j].state == PathState::kEstablished ||
          paths_[j].state == PathState::kPending) {
        exclude.insert(exclude.end(), paths_[j].relays.begin(),
                       paths_[j].relays.end());
      }
    }
    const SimTime now = router_.simulator().now();
    auto selected = select_relays(1, now, exclude);
    if (!selected.has_value()) {
      // No disjoint relays for this slot right now; leave it for the
      // next round.
      --attempt_outstanding_;
      continue;
    }
    Path& path = paths_[index];
    if (path.sid != 0) {
      router_.unregister_reverse_handler(initiator_, path.sid);
    }
    path = Path{};
    path.relays = std::move((*selected)[0]);
    path.relay_keys.reserve(path.relays.size());
    for (std::size_t i = 0; i < path.relays.size(); ++i) {
      path.relay_keys.push_back(crypto::random_symmetric_key(rng_));
    }
    path.responder_key = crypto::random_symmetric_key(rng_);
    path.state = PathState::kPending;
    sync_path_info(index);
    ++started;

    build_path(index, [this, index](bool ok) {
      Path& built = paths_[index];
      built.state = ok ? PathState::kEstablished : PathState::kFailed;
      sync_path_info(index);
      if (--attempt_outstanding_ == 0) finish_attempt();
    });
  }
  if (started == 0) {
    // The cache could not provide a single disjoint path: fall back to
    // the whole-set retry loop (which burns attempts until the cache
    // recovers, exactly like the initial-construction select failure).
    retry_construction();
  }
}

void Session::retry_construction() {
  if (!config_.retry_backoff) {
    attempt_construction();  // immediate retry: the paper's behavior
    return;
  }
  static const auto kBackoffEvent =
      obs::capacity::event_type("session.timer");
  construct_backoff_event_ = router_.simulator().schedule_after(
      backoff_delay(construct_attempts_ - 1),
      [this, alive = alive_] {
        if (!*alive || torn_down_) return;
        construct_backoff_event_ = sim::kInvalidEventId;
        attempt_construction();
      },
      kBackoffEvent);
}

SimDuration Session::backoff_delay(std::size_t failures) {
  const std::size_t shift = std::min<std::size_t>(failures, 20);
  SimDuration delay =
      std::min(config_.backoff_base << shift, config_.backoff_max);
  if (delay < 2) return delay;
  // Deterministic jitter in [delay/2, delay], from the session's own
  // forked stream so it perturbs no other component.
  const SimDuration half = delay / 2;
  return half + static_cast<SimDuration>(
                    backoff_rng_.next_below(static_cast<std::uint64_t>(
                        delay - half + 1)));
}

bool Session::ready() const {
  return !constructing_ && established_paths() >= config_.erasure.min_paths();
}

std::size_t Session::established_paths() const {
  std::size_t count = 0;
  for (const Path& path : paths_) {
    if (path.state == PathState::kEstablished) ++count;
  }
  return count;
}

Allocation Session::make_allocation() const {
  if (!config_.weighted_allocation) return allocate_even(config_.erasure);
  const SimTime now = router_.simulator().now();
  std::vector<double> scores(paths_.size(), 0.0);
  for (std::size_t j = 0; j < paths_.size(); ++j) {
    if (paths_[j].state != PathState::kEstablished) continue;
    double min_q = 1.0;
    for (NodeId relay : paths_[j].relays) {
      min_q = std::min(min_q, cache_.predictor(relay, now));
    }
    scores[j] = min_q;
  }
  return allocate_weighted(config_.erasure, scores);
}

MessageId Session::send_message(ByteView data) {
  return send_message(data, SegmentPriority::kInteractive);
}

MessageId Session::send_message(ByteView data, SegmentPriority priority) {
  const auto usable = usable_paths();
  if (usable.empty()) return 0;

  // Bounded send queue: refuse the whole message up front when the pending
  // ledger has no room for its segments. Bulk is refused earlier (at 3/4 of
  // the bound) when shed_low_priority is on, keeping headroom for
  // interactive traffic. The check precedes the id draw so a shed message
  // costs zero RNG draws — off-state runs never reach it.
  if (config_.max_inflight_segments > 0) {
    std::size_t limit = config_.max_inflight_segments;
    if (config_.shed_low_priority && priority == SegmentPriority::kBulk) {
      limit = limit * 3 / 4;
    }
    if (pending_segments_.size() + config_.erasure.n > limit) {
      ++messages_shed_;
      const bool hard_full = pending_segments_.size() + config_.erasure.n >
                             config_.max_inflight_segments;
      (hard_full ? shed_queue_ctr_ : shed_headroom_ctr_)->inc();
      return 0;
    }
  }

  MessageId id;
  do {
    id = rng_.next_u64();
  } while (id == 0);

  // Encode with the session codec (cached in the router's codec table so
  // RS matrices are not rebuilt per message) into the session's scratch
  // vector, reusing the segment buffers across messages.
  session_codec().encode_into(data, encode_scratch_);
  const auto& segments = encode_scratch_;

  // One digest per message, reused by every segment's trailer (and kept in
  // the pending ledger so retransmits carry it too). Zero bytes of work
  // with both auth knobs off.
  crypto::MessageDigest digest{};
  if (config_.segment_auth || config_.verified_decode) {
    digest = crypto::message_digest(data);
  }

  const Allocation alloc = make_allocation();
  ++messages_sent_;
  msgs_ctr_->inc();
  // Segment sends, their delay timers, and every retransmit they spawn all
  // inherit the message id as correlation: the trace groups the message's
  // whole causal tree under one id.
  obs::CorrelationScope corr_scope(id);
  auto& tracer = obs::Tracer::instance();
  if (tracer.enabled()) {
    obs::TraceArgs args;
    args.add("bytes", static_cast<std::uint64_t>(data.size()))
        .add("segments", static_cast<std::uint64_t>(segments.size()));
    tracer.instant("anon", "message_send", id, args);
  }
  const SimTime now = router_.simulator().now();
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const std::size_t path_index = alloc[s];
    if (paths_[path_index].state != PathState::kEstablished) continue;
    if (config_.backpressure && priority == SegmentPriority::kBulk &&
        congested_until_[path_index] > now) {
      // A relay on this path recently shed under load: hold bulk segments
      // back (the erasure code absorbs the loss if enough paths are clear)
      // rather than feeding the hotspot.
      ++segments_deferred_;
      shed_congested_ctr_->inc();
      continue;
    }
    send_segment_on_path(path_index, id, segments[s], data.size(),
                         /*retries=*/0, digest, priority);
  }
  return id;
}

void Session::apply_auth_trailer(PayloadCore& core, const Path& path,
                                 const crypto::MessageDigest& digest) const {
  if (config_.segment_auth) {
    core.auth_flags = PayloadCore::kAuthTagged;
    core.message_digest = digest;
    core.auth_tag = crypto::segment_tag(
        crypto::derive_segment_auth_key(path.responder_key), core.message_id,
        core.segment_index, core.original_size, core.needed_segments,
        core.total_segments, digest, core.segment);
  } else if (config_.verified_decode) {
    core.auth_flags = PayloadCore::kAuthDigest;
    core.message_digest = digest;
  }
}

void Session::report_path_suspicion(std::size_t path_index, double weight,
                                    obs::Counter* evidence_ctr) {
  if (!config_.relay_suspicion || !cache_.suspicion_enabled() ||
      weight <= 0.0) {
    return;
  }
  const SimTime now = router_.simulator().now();
  // The responder cannot name the guilty relay, only the guilty path:
  // every relay on it shares the evidence and decays clean if innocent
  // (paper-style accountability at path granularity).
  for (NodeId relay : paths_[path_index].relays) {
    cache_.report_suspicion(relay, weight, now);
    evidence_ctr->inc();
  }
  quarantined_gauge_->set(
      static_cast<std::int64_t>(cache_.quarantined_count(now)));
}

void Session::send_segment_on_path(std::size_t path_index,
                                   MessageId message_id,
                                   const erasure::Segment& segment,
                                   std::size_t original_size,
                                   std::size_t retries,
                                   const crypto::MessageDigest& digest,
                                   SegmentPriority priority) {
  // Rebuild-driven resends arrive here from a construct-ack chain; pin the
  // correlation back to the message so the timeout event and the relay
  // hops below stay on the message's causal tree.
  obs::CorrelationScope corr_scope(message_id);
  auto& tracer = obs::Tracer::instance();
  if (tracer.enabled()) {
    obs::TraceArgs args;
    args.add("segment", static_cast<std::uint64_t>(segment.index))
        .add("path", static_cast<std::uint64_t>(path_index))
        .add("retries", static_cast<std::uint64_t>(retries));
    tracer.span_begin("anon",
                      retries == 0 ? "segment" : "segment_retransmit",
                      message_id, args);
  }
  Path& path = paths_[path_index];
  PayloadCore core;
  core.message_id = message_id;
  core.segment_index = segment.index;
  core.original_size = static_cast<std::uint32_t>(original_size);
  core.needed_segments = static_cast<std::uint16_t>(config_.erasure.m);
  core.total_segments = static_cast<std::uint16_t>(config_.erasure.n);
  core.segment = segment.data;
  core.responder_key = path.responder_key;
  apply_auth_trailer(core, path, digest);

  Bytes blob = router_.onion().seal_payload_core(
      core, router_.directory().public_key(responder_), rng_);
  const std::uint64_t seq = path.next_seq++;
  blob.reserve(blob.size() +
               path.relay_keys.size() * router_.onion().layer_overhead());
  for (std::size_t i = path.relay_keys.size(); i-- > 0;) {
    router_.onion().wrap_layer_in_place(path.relay_keys[i], seq, blob);
  }
  router_.send_payload(initiator_, path.sid, path.relays.front(), seq,
                       std::move(blob), priority);
  ++segments_sent_;
  path_info_[path_index].sends++;
  seg_sent_ctr_->inc();

  // Register the pending ack with its timeout. With adaptive timeouts the
  // wait is the path's current RTO, doubled for every retry already spent
  // on this segment; otherwise the fixed ack_timeout.
  SimDuration timeout = config_.ack_timeout;
  if (config_.adaptive_timeouts) {
    timeout = current_rto(path_index);
    const std::size_t shift = std::min<std::size_t>(retries, 6);
    timeout = std::min(timeout << shift, config_.rto_max);
  }
  const std::uint64_t key = pending_key(message_id, segment.index);
  PendingSegment pending;
  pending.message_id = message_id;
  pending.segment_index = segment.index;
  pending.segment = segment;
  pending.original_size = original_size;
  pending.path_index = path_index;
  pending.sent_at = router_.simulator().now();
  pending.retries = retries;
  pending.digest = digest;
  pending.priority = priority;
  static const auto kSegmentTimerEvent =
      obs::capacity::event_type("session.timer");
  pending.timeout_event = router_.simulator().schedule_after(
      timeout,
      [this, key, alive = alive_] {
        if (!*alive) return;
        on_segment_timeout(key, /*fail_pending_path=*/false);
      },
      kSegmentTimerEvent);
  pending_segments_[key] = std::move(pending);
}

void Session::on_segment_timeout(std::uint64_t key, bool fail_pending_path) {
  const auto it = pending_segments_.find(key);
  if (it == pending_segments_.end()) return;
  const std::size_t failed_path = it->second.path_index;
  ++failures_detected_;
  // Stall evidence: the path swallowed a segment without an ack or a
  // corruption verdict. Weaker than a corrupt-nack — dead relays produce
  // it too, and the liveness predictor already covers those.
  //
  // Suspicion-neutral overload accounting: if a relay on this path has
  // signalled backpressure since the segment went out, the loss is
  // explained by honest overload, not malice — suppress the evidence so
  // saturated-but-honest relays are not quarantined as byzantine.
  const bool overload_explained =
      config_.backpressure && last_backpressure_[failed_path] != 0 &&
      last_backpressure_[failed_path] >= it->second.sent_at;
  if (overload_explained) {
    ++stalls_suppressed_;
    stall_suppressed_ctr_->inc();
  } else {
    report_path_suspicion(failed_path, config_.suspicion_stall_weight,
                          susp_stall_ctr_);
  }

  if (config_.adaptive_timeouts) {
    PathHealth& health = path_health_[failed_path];
    ++health.consecutive_timeouts;
    const bool declare_failed =
        health.consecutive_timeouts >= config_.path_fail_threshold;
    // Retransmit over a surviving path: round-robin scan starting after
    // the timed-out one; the same path still qualifies while it is below
    // the failure threshold.
    if (it->second.retries < config_.max_segment_retries) {
      std::size_t target = paths_.size();
      for (std::size_t step = 1; step <= paths_.size(); ++step) {
        const std::size_t candidate = (failed_path + step) % paths_.size();
        if (paths_[candidate].state != PathState::kEstablished) continue;
        if (declare_failed && candidate == failed_path) continue;
        target = candidate;
        break;
      }
      if (target < paths_.size()) {
        const PendingSegment seg = std::move(it->second);
        pending_segments_.erase(it);
        ++segments_retransmitted_;
        seg_retx_ctr_->inc();
        end_segment_span(seg, "retransmitted");
        if (declare_failed) mark_path_failed(failed_path);
        send_segment_on_path(target, seg.message_id, seg.segment,
                             seg.original_size, seg.retries + 1, seg.digest,
                             seg.priority);
        return;
      }
    }
    // Retry budget exhausted (or no surviving path): the segment is lost
    // for good and the ledger records it.
    expire_segment(key);
    Path& p = paths_[failed_path];
    if (fail_pending_path && p.state == PathState::kPending) {
      p.state = PathState::kFailed;
      sync_path_info(failed_path);
      if (path_failure_handler_) path_failure_handler_(failed_path);
      if (config_.auto_reconstruct) schedule_rebuild(failed_path);
    } else if (declare_failed) {
      mark_path_failed(failed_path);
    }
    return;
  }

  // Fixed-timeout behavior, identical to the paper configuration: one
  // timeout fails the path outright.
  if (config_.auto_reconstruct) {
    // Keep the entry: the rebuild's resend_pending() picks it up.
    it->second.timeout_event = sim::kInvalidEventId;
  } else {
    expire_segment(key);
  }
  if (fail_pending_path) {
    // A pending combined path that times out is simply failed.
    Path& p = paths_[failed_path];
    if (p.state == PathState::kPending) {
      p.state = PathState::kFailed;
      sync_path_info(failed_path);
      if (path_failure_handler_) path_failure_handler_(failed_path);
      if (config_.auto_reconstruct) rebuild_path(failed_path);
      return;
    }
  }
  mark_path_failed(failed_path);
}

void Session::end_segment_span(const PendingSegment& seg,
                               const char* outcome) {
  auto& tracer = obs::Tracer::instance();
  if (!tracer.enabled()) return;
  obs::TraceArgs args;
  args.add("outcome", outcome)
      .add("segment", static_cast<std::uint64_t>(seg.segment_index))
      .add("path", static_cast<std::uint64_t>(seg.path_index));
  tracer.span_end("anon",
                  seg.retries == 0 ? "segment" : "segment_retransmit",
                  seg.message_id, args);
}

void Session::expire_segment(std::uint64_t key) {
  const auto it = pending_segments_.find(key);
  if (it == pending_segments_.end()) return;
  const PendingSegment seg = std::move(it->second);
  pending_segments_.erase(it);
  ++segments_expired_;
  seg_expired_ctr_->inc();
  end_segment_span(seg, "expired");
  if (segment_expiry_handler_) {
    segment_expiry_handler_(seg.message_id, seg.segment_index,
                            seg.path_index);
  }
}

void Session::observe_rtt(std::size_t path_index, SimDuration sample) {
  PathHealth& health = path_health_[path_index];
  const double sample_us = static_cast<double>(sample);
  rtt_us_->record(static_cast<std::uint64_t>(sample));
  if (!health.rtt_valid) {
    health.rtt_valid = true;
    health.srtt_us = sample_us;
    health.rttvar_us = sample_us / 2.0;
  } else {
    // Jacobson/Karels: RTTVAR <- 3/4 RTTVAR + 1/4 |SRTT - R'|,
    //                  SRTT   <- 7/8 SRTT + 1/8 R'.
    health.rttvar_us =
        0.75 * health.rttvar_us + 0.25 * std::abs(health.srtt_us - sample_us);
    health.srtt_us = 0.875 * health.srtt_us + 0.125 * sample_us;
  }
  const SimDuration rto = current_rto(path_index);
  rto_us_->record(static_cast<std::uint64_t>(rto));
  auto& tracer = obs::Tracer::instance();
  if (tracer.enabled()) {
    obs::TraceArgs args;
    args.add("path", static_cast<std::uint64_t>(path_index))
        .add("rtt_us", static_cast<std::uint64_t>(sample))
        .add("rto_us", static_cast<std::uint64_t>(rto));
    tracer.instant("anon", "rto_update", obs::current_correlation(), args);
  }
}

SimDuration Session::current_rto(std::size_t path_index) const {
  const PathHealth& health = path_health_[path_index];
  if (!config_.adaptive_timeouts || !health.rtt_valid) {
    return config_.ack_timeout;
  }
  const double rto = health.srtt_us + 4.0 * health.rttvar_us;
  return std::clamp(static_cast<SimDuration>(rto), config_.rto_min,
                    config_.rto_max);
}

void Session::mark_path_failed(std::size_t path_index) {
  Path& path = paths_[path_index];
  if (path.state != PathState::kEstablished) return;
  path.state = PathState::kFailed;
  sync_path_info(path_index);
  path_failures_ctr_->inc();
  auto& tracer = obs::Tracer::instance();
  if (tracer.enabled()) {
    obs::TraceArgs args;
    args.add("path", static_cast<std::uint64_t>(path_index));
    tracer.instant("anon", "path_failed", obs::current_correlation(), args);
  }
  if (path_failure_handler_) path_failure_handler_(path_index);
  if (config_.auto_reconstruct) schedule_rebuild(path_index);
}

void Session::schedule_rebuild(std::size_t path_index) {
  // First rebuild of a streak is immediate (detection already cost a full
  // timeout); repeat failures back off exponentially when enabled.
  if (!config_.retry_backoff || path_health_[path_index].rebuild_failures == 0) {
    rebuild_path(path_index);
    return;
  }
  static const auto kRebuildEvent =
      obs::capacity::event_type("session.timer");
  router_.simulator().schedule_after(
      backoff_delay(path_health_[path_index].rebuild_failures - 1),
      [this, path_index, alive = alive_] {
        if (!*alive || torn_down_) return;
        if (paths_[path_index].state != PathState::kFailed) return;
        rebuild_path(path_index);
      },
      kRebuildEvent);
}

void Session::rebuild_path(std::size_t path_index) {
  // A rebuild construct that times out after teardown would otherwise
  // restart the rebuild loop against a dead session forever.
  if (torn_down_) return;
  // Exclude relays used by the other live paths to keep disjointness.
  std::vector<NodeId> exclude;
  for (std::size_t j = 0; j < paths_.size(); ++j) {
    if (j == path_index) continue;
    if (paths_[j].state == PathState::kEstablished ||
        paths_[j].state == PathState::kPending) {
      exclude.insert(exclude.end(), paths_[j].relays.begin(),
                     paths_[j].relays.end());
    }
  }
  const SimTime now = router_.simulator().now();
  auto selected = select_relays(1, now, exclude);
  if (!selected.has_value()) {
    if (config_.retry_backoff) {
      // Not enough disjoint relays right now: try again later instead of
      // abandoning the path (and its kept pending segments) forever.
      ++path_health_[path_index].rebuild_failures;
      schedule_rebuild(path_index);
    } else {
      // No retry is coming: close the ledger on any segments that were
      // kept for a resend that can never happen.
      expire_kept_pending(path_index);
    }
    return;
  }

  Path& path = paths_[path_index];
  if (path.sid != 0) {
    router_.unregister_reverse_handler(initiator_, path.sid);
  }
  const std::uint64_t rebuilds = path_info_[path_index].rebuilds + 1;
  path = Path{};
  path.relays = (*selected)[0];
  for (std::size_t i = 0; i < path.relays.size(); ++i) {
    path.relay_keys.push_back(crypto::random_symmetric_key(rng_));
  }
  path.responder_key = crypto::random_symmetric_key(rng_);
  path.state = PathState::kPending;
  path_info_[path_index].rebuilds = rebuilds;
  sync_path_info(path_index);

  build_path(path_index, [this, path_index](bool ok) {
    Path& built = paths_[path_index];
    built.state = ok ? PathState::kEstablished : PathState::kFailed;
    sync_path_info(path_index);
    if (ok) {
      path_health_[path_index].rebuild_failures = 0;
      path_health_[path_index].consecutive_timeouts = 0;
      resend_pending(path_index, path_index);
    } else if (config_.auto_reconstruct) {
      ++path_health_[path_index].rebuild_failures;
      schedule_rebuild(path_index);
    }
  });
}

void Session::expire_kept_pending(std::size_t path_index) {
  std::vector<std::uint64_t> keys;
  for (const auto& [key, pending] : pending_segments_) {
    if (pending.path_index == path_index &&
        pending.timeout_event == sim::kInvalidEventId) {
      keys.push_back(key);
    }
  }
  for (const std::uint64_t key : keys) expire_segment(key);
}

void Session::resend_pending(std::size_t old_path_index,
                             std::size_t new_path_index) {
  // Collect the un-acked segments that were riding the failed path and
  // resend them over the rebuilt one.
  std::vector<PendingSegment> to_resend;
  for (auto it = pending_segments_.begin(); it != pending_segments_.end();) {
    if (it->second.path_index == old_path_index) {
      router_.simulator().cancel(it->second.timeout_event);
      to_resend.push_back(std::move(it->second));
      it = pending_segments_.erase(it);
    } else {
      ++it;
    }
  }
  segments_retransmitted_ += to_resend.size();
  seg_retx_ctr_->inc(to_resend.size());
  for (const PendingSegment& pending : to_resend) {
    end_segment_span(pending, "resent_on_rebuild");
    send_segment_on_path(new_path_index, pending.message_id, pending.segment,
                         pending.original_size, /*retries=*/0,
                         pending.digest, pending.priority);
  }
}

void Session::check_predictors() {
  const SimTime now = router_.simulator().now();
  for (std::size_t j = 0; j < paths_.size(); ++j) {
    if (paths_[j].state != PathState::kEstablished) continue;
    double min_q = 1.0;
    for (NodeId relay : paths_[j].relays) {
      min_q = std::min(min_q, cache_.predictor(relay, now));
    }
    if (min_q < config_.replace_threshold) {
      ++proactive_replacements_;
      // Release the old path politely before rebuilding over it.
      if (paths_[j].sid != 0 && !paths_[j].relays.empty()) {
        router_.send_teardown(initiator_, paths_[j].sid,
                              paths_[j].relays.front());
      }
      rebuild_path(j);
    }
  }
}

void Session::on_reverse(std::size_t path_index,
                         const ReverseDelivery& delivery) {
  if (delivery.backpressure) {
    // Plain (un-onioned) congestion signal from a relay on this path; it
    // carries no payload to unwrap.
    on_backpressure(path_index);
    return;
  }
  Path& path = paths_[path_index];
  // Strip the relay layers (R_1 outermost) and the responder-core layer,
  // all in place in the session-owned scratch buffer.
  Bytes& blob = reverse_scratch_;
  blob.assign(delivery.blob.begin(), delivery.blob.end());
  const std::uint64_t seq = delivery.seq | AnonRouter::kReverseBit;
  for (const RelayKey& key : path.relay_keys) {
    if (!router_.onion().unwrap_layer_in_place(key, seq, blob)) return;
  }
  if (!router_.onion().unwrap_layer_in_place(path.responder_key, seq, blob)) {
    return;
  }
  const auto core = parse_reverse_core(blob);
  if (!core.has_value()) return;
  handle_reverse_core(path_index, *core);
}

void Session::on_backpressure(std::size_t path_index) {
  ++backpressure_rx_;
  bp_rx_ctr_->inc();
  if (!config_.backpressure) return;
  const SimTime now = router_.simulator().now();
  last_backpressure_[path_index] = now;
  congested_until_[path_index] = now + config_.backpressure_hold;
}

void Session::handle_reverse_core(std::size_t path_index,
                                  const ReverseCore& core) {
  if (core.type == ReverseCore::Type::kAck) {
    const std::uint64_t key = pending_key(core.message_id, core.segment_index);
    const auto it = pending_segments_.find(key);
    if (it != pending_segments_.end()) {
      router_.simulator().cancel(it->second.timeout_event);
      if (config_.adaptive_timeouts) {
        // Karn's algorithm: never sample a retransmitted segment — the ack
        // could belong to an earlier transmission.
        if (it->second.retries == 0) {
          observe_rtt(it->second.path_index,
                      router_.simulator().now() - it->second.sent_at);
        }
        path_health_[it->second.path_index].consecutive_timeouts = 0;
      }
      ++acks_matched_;
      path_info_[it->second.path_index].acks++;
      path_health_[it->second.path_index].consecutive_nacks = 0;
      seg_acked_ctr_->inc();
      end_segment_span(it->second, "acked");
      pending_segments_.erase(it);
    }
    // An ack on a path still pending from combined construction confirms
    // the path end to end.
    if (paths_[path_index].state == PathState::kPending) {
      paths_[path_index].state = PathState::kEstablished;
      sync_path_info(path_index);
    }
    ++acks_received_;
    if (ack_handler_) {
      ack_handler_(core.message_id, core.segment_index, path_index);
    }
    return;
  }

  if (core.type == ReverseCore::Type::kCorruptNack) {
    // The responder's verdict that a segment sent down this path arrived
    // tampered with. Evidence first, then (optionally) recovery.
    ++nacks_received_;
    nacks_rx_ctr_->inc();
    report_path_suspicion(path_index, config_.suspicion_corrupt_weight,
                          susp_corrupt_ctr_);

    const std::uint64_t key = pending_key(core.message_id, core.segment_index);
    const auto it = pending_segments_.find(key);
    if (config_.corruption_escalation && it != pending_segments_.end() &&
        it->second.path_index == path_index) {
      // The transmission is conclusively lost — no point waiting out its
      // timer. Retransmit on a different established path while retry
      // budget remains; otherwise close the ledger on it.
      router_.simulator().cancel(it->second.timeout_event);
      std::size_t target = paths_.size();
      if (it->second.retries < config_.max_segment_retries) {
        for (std::size_t step = 1; step < paths_.size(); ++step) {
          const std::size_t candidate = (path_index + step) % paths_.size();
          if (paths_[candidate].state != PathState::kEstablished) continue;
          target = candidate;
          break;
        }
      }
      if (target < paths_.size()) {
        const PendingSegment seg = std::move(it->second);
        pending_segments_.erase(it);
        ++segments_retransmitted_;
        seg_retx_ctr_->inc();
        end_segment_span(seg, "retransmitted_after_nack");
        send_segment_on_path(target, seg.message_id, seg.segment,
                             seg.original_size, seg.retries + 1, seg.digest,
                             seg.priority);
      } else {
        expire_segment(key);
      }
    }
    // Without escalation the pending entry keeps its timer: the timeout
    // path handles it exactly as before this feature existed.

    if (config_.corruption_escalation) {
      PathHealth& health = path_health_[path_index];
      ++health.consecutive_nacks;
      if (health.consecutive_nacks >= config_.escalation_nack_threshold) {
        // Sustained corruption on this path: declare it failed and let the
        // existing rebuild/top-up machinery provision a replacement (with
        // relay_suspicion on, the replacement avoids the suspects).
        health.consecutive_nacks = 0;
        mark_path_failed(path_index);
      }
    }
    return;
  }

  // Response segment: reassemble like the responder does, keyed by
  // (message id, response id) so repeated responses are each delivered.
  const std::uint64_t response_key =
      core.message_id ^
      (static_cast<std::uint64_t>(core.response_id) * 0xff51afd7ed558ccdULL);
  auto [it, inserted] = responses_.try_emplace(response_key);
  ResponseReassembly& reassembly = it->second;
  if (inserted) {
    reassembly.needed = core.needed_segments;
    reassembly.total = core.total_segments;
    reassembly.original_size = core.original_size;
  }
  bool duplicate = false;
  for (const auto& seg : reassembly.segments) {
    if (seg.index == core.segment_index) {
      duplicate = true;
      break;
    }
  }
  if (!duplicate) {
    erasure::Segment seg;
    seg.index = core.segment_index;
    seg.data = core.segment;
    reassembly.segments.push_back(std::move(seg));
  }
  if (!reassembly.delivered &&
      reassembly.segments.size() >= reassembly.needed) {
    const auto decoded = session_codec_for(reassembly.needed, reassembly.total)
                             .decode(reassembly.segments,
                                     reassembly.original_size);
    if (decoded.has_value()) {
      reassembly.delivered = true;
      if (response_handler_) response_handler_(core.message_id, *decoded);
    }
  }
}

MessageId Session::send_message_on_demand(ByteView data) {
  const SimTime now = router_.simulator().now();

  // (Re)provision every unbuilt/failed path with fresh relays and keys;
  // their construction rides the payload message itself.
  std::vector<bool> needs_construction(paths_.size(), false);
  for (std::size_t index = 0; index < paths_.size(); ++index) {
    Path& path = paths_[index];
    if (path.state == PathState::kEstablished ||
        path.state == PathState::kPending) {
      continue;
    }
    std::vector<NodeId> exclude;
    for (std::size_t j = 0; j < paths_.size(); ++j) {
      if (j != index) {
        exclude.insert(exclude.end(), paths_[j].relays.begin(),
                       paths_[j].relays.end());
      }
    }
    auto selected = select_relays(1, now, exclude);
    if (!selected.has_value()) continue;
    if (path.sid != 0) {
      router_.unregister_reverse_handler(initiator_, path.sid);
    }
    const std::uint64_t rebuilds = path_info_[index].rebuilds;
    path = Path{};
    path.relays = (*selected)[0];
    for (std::size_t i = 0; i < path.relays.size(); ++i) {
      path.relay_keys.push_back(crypto::random_symmetric_key(rng_));
    }
    path.responder_key = crypto::random_symmetric_key(rng_);
    path.sid = router_.new_initiator_sid(initiator_);
    path.state = PathState::kPending;
    path_info_[index].rebuilds = rebuilds;
    router_.register_reverse_handler(
        initiator_, path.sid,
        [this, index, alive = alive_](const ReverseDelivery& delivery) {
          if (!*alive) return;
          on_reverse(index, delivery);
        });
    needs_construction[index] = true;
    sync_path_info(index);
  }

  MessageId id;
  do {
    id = rng_.next_u64();
  } while (id == 0);

  session_codec().encode_into(data, encode_scratch_);
  const auto& segments = encode_scratch_;
  crypto::MessageDigest digest{};
  if (config_.segment_auth || config_.verified_decode) {
    digest = crypto::message_digest(data);
  }
  const Allocation alloc = make_allocation();
  ++messages_sent_;
  msgs_ctr_->inc();
  obs::CorrelationScope corr_scope(id);
  if (obs::Tracer::instance().enabled()) {
    obs::TraceArgs args;
    args.add("bytes", static_cast<std::uint64_t>(data.size()))
        .add("segments", static_cast<std::uint64_t>(segments.size()))
        .add("on_demand", static_cast<std::uint64_t>(1));
    obs::Tracer::instance().instant("anon", "message_send", id, args);
  }
  bool sent_any = false;
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const std::size_t path_index = alloc[s];
    Path& path = paths_[path_index];
    if (path.state == PathState::kEstablished) {
      send_segment_on_path(path_index, id, segments[s], data.size(),
                           /*retries=*/0, digest);
      sent_any = true;
    } else if (path.state == PathState::kPending) {
      if (needs_construction[path_index]) {
        // First segment on this new path: combined construct + payload.
        needs_construction[path_index] = false;
        const Bytes onion_blob = router_.onion().build_path_onion(
            path.relays, path.relay_keys, responder_, router_.directory(),
            rng_);
        PayloadCore core;
        core.message_id = id;
        core.segment_index = segments[s].index;
        core.original_size = static_cast<std::uint32_t>(data.size());
        core.needed_segments = static_cast<std::uint16_t>(config_.erasure.m);
        core.total_segments = static_cast<std::uint16_t>(config_.erasure.n);
        core.segment = segments[s].data;
        core.responder_key = path.responder_key;
        apply_auth_trailer(core, path, digest);
        Bytes blob = router_.onion().seal_payload_core(
            core, router_.directory().public_key(responder_), rng_);
        const std::uint64_t seq = path.next_seq++;
        blob.reserve(blob.size() +
                     path.relay_keys.size() * router_.onion().layer_overhead());
        for (std::size_t i = path.relay_keys.size(); i-- > 0;) {
          router_.onion().wrap_layer_in_place(path.relay_keys[i], seq, blob);
        }
        if (obs::Tracer::instance().enabled()) {
          obs::TraceArgs args;
          args.add("segment", static_cast<std::uint64_t>(segments[s].index))
              .add("path", static_cast<std::uint64_t>(path_index))
              .add("retries", static_cast<std::uint64_t>(0))
              .add("combined_construct", static_cast<std::uint64_t>(1));
          obs::Tracer::instance().span_begin("anon", "segment", id, args);
        }
        router_.send_construct_with_payload(initiator_, path.sid,
                                            path.relays.front(), seq,
                                            onion_blob, blob);
        ++segments_sent_;
        seg_sent_ctr_->inc();
        // Track it like any pending segment: the end-to-end ack confirms
        // both the path and the delivery. A timed-out pending combined
        // path is simply failed (fail_pending_path).
        SimDuration timeout = config_.ack_timeout;
        if (config_.adaptive_timeouts) timeout = current_rto(path_index);
        const std::uint64_t key = pending_key(id, segments[s].index);
        PendingSegment pending;
        pending.message_id = id;
        pending.segment_index = segments[s].index;
        pending.segment = segments[s];
        pending.original_size = data.size();
        pending.path_index = path_index;
        pending.sent_at = now;
        pending.digest = digest;
        static const auto kResendTimerEvent =
            obs::capacity::event_type("session.timer");
        pending.timeout_event = router_.simulator().schedule_after(
            timeout,
            [this, key, alive = alive_] {
              if (!*alive) return;
              on_segment_timeout(key, /*fail_pending_path=*/true);
            },
            kResendTimerEvent);
        pending_segments_[key] = std::move(pending);
        sent_any = true;
      } else {
        // Later segments follow the construct message down the same path;
        // FIFO per-hop delivery means the state is cached by the time
        // they arrive.
        send_segment_on_path(path_index, id, segments[s], data.size(),
                             /*retries=*/0, digest);
        sent_any = true;
      }
    }
  }
  return sent_any ? id : 0;
}

void Session::redirect(NodeId new_responder, RedirectHandler handler) {
  responder_ = new_responder;
  // Fresh responder keys: the old responder must not be able to read
  // traffic intended for the new one.
  for (Path& path : paths_) {
    path.responder_key = crypto::random_symmetric_key(rng_);
  }

  auto remaining = std::make_shared<std::size_t>(0);
  auto succeeded = std::make_shared<std::size_t>(0);
  auto done = std::make_shared<RedirectHandler>(std::move(handler));
  for (std::size_t index = 0; index < paths_.size(); ++index) {
    Path& path = paths_[index];
    if (path.state != PathState::kEstablished) continue;
    ++*remaining;
  }
  if (*remaining == 0) {
    (*done)(0);
    return;
  }
  for (std::size_t index = 0; index < paths_.size(); ++index) {
    Path& path = paths_[index];
    if (path.state != PathState::kEstablished) continue;
    // Layer the 4-byte destination so only the last relay can read it.
    Bytes blob;
    blob.reserve(4 +
                 path.relay_keys.size() * router_.onion().layer_overhead());
    put_u32be(blob, new_responder);
    const std::uint64_t seq = path.next_seq++;
    for (std::size_t i = path.relay_keys.size(); i-- > 0;) {
      router_.onion().wrap_layer_in_place(path.relay_keys[i], seq, blob);
    }
    router_.send_retarget(
        initiator_, path.sid, path.relays.front(), seq, std::move(blob),
        config_.construct_timeout,
        [this, index, remaining, succeeded, done,
         alive = alive_](bool ok) {
          if (!*alive) return;
          if (ok) {
            ++*succeeded;
          } else {
            mark_path_failed(index);
          }
          if (--*remaining == 0) (*done)(*succeeded);
        });
  }
}

void Session::teardown() {
  torn_down_ = true;
  if (construct_backoff_event_ != sim::kInvalidEventId) {
    router_.simulator().cancel(construct_backoff_event_);
    construct_backoff_event_ = sim::kInvalidEventId;
  }
  // Drain un-acked segments: no ack can arrive once the paths are gone,
  // so account for them now instead of leaking pending entries.
  while (!pending_segments_.empty()) {
    const auto it = pending_segments_.begin();
    router_.simulator().cancel(it->second.timeout_event);
    expire_segment(it->first);
  }
  for (std::size_t index = 0; index < paths_.size(); ++index) {
    Path& path = paths_[index];
    if (path.state == PathState::kEstablished && !path.relays.empty()) {
      router_.send_teardown(initiator_, path.sid, path.relays.front());
    }
    if (path.sid != 0) {
      router_.unregister_reverse_handler(initiator_, path.sid);
    }
    path = Path{};
    sync_path_info(index);
  }
}

void Session::sync_path_info(std::size_t index) {
  path_info_[index].relays = paths_[index].relays;
  path_info_[index].state = paths_[index].state;
  path_info_[index].sid = paths_[index].sid;
}

std::vector<std::size_t> Session::usable_paths() const {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < paths_.size(); ++j) {
    if (paths_[j].state == PathState::kEstablished) out.push_back(j);
  }
  return out;
}

const erasure::Codec& Session::session_codec() {
  return session_codec_for(config_.erasure.m, config_.erasure.n);
}

const erasure::Codec& Session::session_codec_for(std::size_t m,
                                                 std::size_t n) {
  return router_.codec_for(m, n);
}

}  // namespace p2panon::anon
