#include "anon/session.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace p2panon::anon {

namespace {
std::uint64_t pending_key(MessageId id, std::uint32_t segment) {
  return id ^ (static_cast<std::uint64_t>(segment) * 0x9e3779b97f4a7c15ULL);
}
}  // namespace

Session::Session(AnonRouter& router, const membership::NodeCache& cache,
                 NodeId initiator, NodeId responder, SessionConfig config,
                 Rng rng)
    : router_(router),
      cache_(cache),
      initiator_(initiator),
      responder_(responder),
      config_(config),
      rng_(rng),
      selector_(config.mix_choice, rng_.fork()),
      alive_(std::make_shared<bool>(true)) {
  config_.erasure.validate();
  paths_.resize(config_.erasure.k);
  path_info_.resize(config_.erasure.k);
  if (config_.replace_threshold > 0.0) {
    predictor_task_ = std::make_unique<sim::PeriodicTask>(
        router_.simulator(), config_.replace_check_interval,
        [this] { check_predictors(); });
    predictor_task_->start();
  }
}

Session::~Session() {
  *alive_ = false;
  for (auto& pending : pending_segments_) {
    router_.simulator().cancel(pending.second.timeout_event);
  }
  for (const Path& path : paths_) {
    if (path.sid != 0) {
      router_.unregister_reverse_handler(initiator_, path.sid);
    }
  }
}

void Session::construct(ConstructHandler handler) {
  if (constructing_) {
    throw std::logic_error("Session::construct: already constructing");
  }
  construct_handler_ = std::move(handler);
  constructing_ = true;
  construct_attempts_ = 0;
  attempt_construction();
}

void Session::attempt_construction() {
  ++construct_attempts_;

  const SimTime now = router_.simulator().now();
  auto selected =
      selector_.select_paths(cache_, config_.erasure.k, config_.path_length,
                             now, initiator_, responder_);
  if (!selected.has_value()) {
    // Cache too small right now; count the attempt and retry or give up.
    if (construct_attempts_ < config_.max_construct_attempts) {
      attempt_construction();
      return;
    }
    constructing_ = false;
    construct_handler_(false, construct_attempts_);
    return;
  }

  attempt_outstanding_ = config_.erasure.k;
  for (std::size_t index = 0; index < config_.erasure.k; ++index) {
    Path& path = paths_[index];
    if (path.sid != 0) {
      router_.unregister_reverse_handler(initiator_, path.sid);
    }
    path = Path{};
    path.relays = (*selected)[index];
    path.relay_keys.reserve(path.relays.size());
    for (std::size_t i = 0; i < path.relays.size(); ++i) {
      path.relay_keys.push_back(crypto::random_symmetric_key(rng_));
    }
    path.responder_key = crypto::random_symmetric_key(rng_);
    path.state = PathState::kPending;
    sync_path_info(index);

    build_path(index, [this, index](bool ok) {
      Path& built = paths_[index];
      built.state = ok ? PathState::kEstablished : PathState::kFailed;
      sync_path_info(index);
      if (--attempt_outstanding_ == 0) finish_attempt();
    });
  }
}

void Session::build_path(std::size_t index, std::function<void(bool)> done) {
  Path& path = paths_[index];
  const StreamId sid = router_.initiate_path(
      initiator_, path.relays, path.relay_keys, responder_,
      config_.construct_timeout,
      [alive = alive_, done = std::move(done)](bool ok) {
        if (!*alive) return;
        done(ok);
      });
  path.sid = sid;
  router_.register_reverse_handler(
      initiator_, sid,
      [this, index, alive = alive_](const ReverseDelivery& delivery) {
        if (!*alive) return;
        on_reverse(index, delivery);
      });
}

void Session::finish_attempt() {
  const std::size_t established = established_paths();
  if (established >= config_.erasure.min_paths()) {
    constructing_ = false;
    construct_handler_(true, construct_attempts_);
    return;
  }
  // Whole-set retry with a fresh relay set (the paper's "another set of
  // relay nodes for another attempt").
  for (std::size_t index = 0; index < paths_.size(); ++index) {
    Path& path = paths_[index];
    if (path.state == PathState::kEstablished && path.sid != 0 &&
        !path.relays.empty()) {
      router_.send_teardown(initiator_, path.sid, path.relays.front());
    }
    if (path.sid != 0) {
      router_.unregister_reverse_handler(initiator_, path.sid);
      path.sid = 0;
    }
    path.state = PathState::kUnbuilt;
    sync_path_info(index);
  }
  if (construct_attempts_ < config_.max_construct_attempts) {
    attempt_construction();
  } else {
    constructing_ = false;
    construct_handler_(false, construct_attempts_);
  }
}

bool Session::ready() const {
  return !constructing_ && established_paths() >= config_.erasure.min_paths();
}

std::size_t Session::established_paths() const {
  std::size_t count = 0;
  for (const Path& path : paths_) {
    if (path.state == PathState::kEstablished) ++count;
  }
  return count;
}

Allocation Session::make_allocation() const {
  if (!config_.weighted_allocation) return allocate_even(config_.erasure);
  const SimTime now = router_.simulator().now();
  std::vector<double> scores(paths_.size(), 0.0);
  for (std::size_t j = 0; j < paths_.size(); ++j) {
    if (paths_[j].state != PathState::kEstablished) continue;
    double min_q = 1.0;
    for (NodeId relay : paths_[j].relays) {
      min_q = std::min(min_q, cache_.predictor(relay, now));
    }
    scores[j] = min_q;
  }
  return allocate_weighted(config_.erasure, scores);
}

MessageId Session::send_message(ByteView data) {
  const auto usable = usable_paths();
  if (usable.empty()) return 0;

  MessageId id;
  do {
    id = rng_.next_u64();
  } while (id == 0);

  // Encode with the session codec (cached in the router's codec table so
  // RS matrices are not rebuilt per message).
  const auto segments = session_codec().encode(data);

  const Allocation alloc = make_allocation();
  ++messages_sent_;
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const std::size_t path_index = alloc[s];
    if (paths_[path_index].state != PathState::kEstablished) continue;
    send_segment_on_path(path_index, id, segments[s], data.size());
  }
  return id;
}

void Session::send_segment_on_path(std::size_t path_index,
                                   MessageId message_id,
                                   const erasure::Segment& segment,
                                   std::size_t original_size) {
  Path& path = paths_[path_index];
  PayloadCore core;
  core.message_id = message_id;
  core.segment_index = segment.index;
  core.original_size = static_cast<std::uint32_t>(original_size);
  core.needed_segments = static_cast<std::uint16_t>(config_.erasure.m);
  core.total_segments = static_cast<std::uint16_t>(config_.erasure.n);
  core.segment = segment.data;
  core.responder_key = path.responder_key;

  Bytes blob = router_.onion().seal_payload_core(
      core, router_.directory().public_key(responder_), rng_);
  const std::uint64_t seq = path.next_seq++;
  for (std::size_t i = path.relay_keys.size(); i-- > 0;) {
    blob = router_.onion().wrap_layer(path.relay_keys[i], seq, blob);
  }
  router_.send_payload(initiator_, path.sid, path.relays.front(), seq,
                       std::move(blob));
  ++segments_sent_;

  // Register the pending ack with its timeout.
  const std::uint64_t key = pending_key(message_id, segment.index);
  PendingSegment pending;
  pending.message_id = message_id;
  pending.segment_index = segment.index;
  pending.segment = segment;
  pending.original_size = original_size;
  pending.path_index = path_index;
  pending.timeout_event = router_.simulator().schedule_after(
      config_.ack_timeout, [this, key, alive = alive_] {
        if (!*alive) return;
        const auto it = pending_segments_.find(key);
        if (it == pending_segments_.end()) return;
        const std::size_t failed_path = it->second.path_index;
        ++failures_detected_;
        if (config_.auto_reconstruct) {
          // Keep the entry: the rebuild's resend_pending() picks it up.
          it->second.timeout_event = sim::kInvalidEventId;
        } else {
          pending_segments_.erase(it);
        }
        mark_path_failed(failed_path);
      });
  pending_segments_[key] = std::move(pending);
}

void Session::mark_path_failed(std::size_t path_index) {
  Path& path = paths_[path_index];
  if (path.state != PathState::kEstablished) return;
  path.state = PathState::kFailed;
  sync_path_info(path_index);
  if (path_failure_handler_) path_failure_handler_(path_index);
  if (config_.auto_reconstruct) rebuild_path(path_index);
}

void Session::rebuild_path(std::size_t path_index) {
  // Exclude relays used by the other live paths to keep disjointness.
  std::vector<NodeId> exclude;
  for (std::size_t j = 0; j < paths_.size(); ++j) {
    if (j == path_index) continue;
    if (paths_[j].state == PathState::kEstablished ||
        paths_[j].state == PathState::kPending) {
      exclude.insert(exclude.end(), paths_[j].relays.begin(),
                     paths_[j].relays.end());
    }
  }
  const SimTime now = router_.simulator().now();
  auto selected = selector_.select_paths(cache_, 1, config_.path_length, now,
                                         initiator_, responder_, exclude);
  if (!selected.has_value()) return;

  Path& path = paths_[path_index];
  if (path.sid != 0) {
    router_.unregister_reverse_handler(initiator_, path.sid);
  }
  const std::uint64_t rebuilds = path_info_[path_index].rebuilds + 1;
  path = Path{};
  path.relays = (*selected)[0];
  for (std::size_t i = 0; i < path.relays.size(); ++i) {
    path.relay_keys.push_back(crypto::random_symmetric_key(rng_));
  }
  path.responder_key = crypto::random_symmetric_key(rng_);
  path.state = PathState::kPending;
  path_info_[path_index].rebuilds = rebuilds;
  sync_path_info(path_index);

  build_path(path_index, [this, path_index](bool ok) {
    Path& built = paths_[path_index];
    built.state = ok ? PathState::kEstablished : PathState::kFailed;
    sync_path_info(path_index);
    if (ok) {
      resend_pending(path_index, path_index);
    } else if (config_.auto_reconstruct) {
      rebuild_path(path_index);
    }
  });
}

void Session::resend_pending(std::size_t old_path_index,
                             std::size_t new_path_index) {
  // Collect the un-acked segments that were riding the failed path and
  // resend them over the rebuilt one.
  std::vector<PendingSegment> to_resend;
  for (auto it = pending_segments_.begin(); it != pending_segments_.end();) {
    if (it->second.path_index == old_path_index) {
      router_.simulator().cancel(it->second.timeout_event);
      to_resend.push_back(std::move(it->second));
      it = pending_segments_.erase(it);
    } else {
      ++it;
    }
  }
  for (const PendingSegment& pending : to_resend) {
    send_segment_on_path(new_path_index, pending.message_id, pending.segment,
                         pending.original_size);
  }
}

void Session::check_predictors() {
  const SimTime now = router_.simulator().now();
  for (std::size_t j = 0; j < paths_.size(); ++j) {
    if (paths_[j].state != PathState::kEstablished) continue;
    double min_q = 1.0;
    for (NodeId relay : paths_[j].relays) {
      min_q = std::min(min_q, cache_.predictor(relay, now));
    }
    if (min_q < config_.replace_threshold) {
      ++proactive_replacements_;
      // Release the old path politely before rebuilding over it.
      if (paths_[j].sid != 0 && !paths_[j].relays.empty()) {
        router_.send_teardown(initiator_, paths_[j].sid,
                              paths_[j].relays.front());
      }
      rebuild_path(j);
    }
  }
}

void Session::on_reverse(std::size_t path_index,
                         const ReverseDelivery& delivery) {
  Path& path = paths_[path_index];
  // Strip the relay layers (R_1 outermost) and the responder-core layer.
  Bytes blob(delivery.blob.begin(), delivery.blob.end());
  const std::uint64_t seq = delivery.seq | AnonRouter::kReverseBit;
  for (const RelayKey& key : path.relay_keys) {
    auto inner = router_.onion().unwrap_layer(key, seq, blob);
    if (!inner.has_value()) return;
    blob = std::move(*inner);
  }
  auto core_plain = router_.onion().unwrap_layer(path.responder_key, seq, blob);
  if (!core_plain.has_value()) return;
  const auto core = parse_reverse_core(*core_plain);
  if (!core.has_value()) return;
  handle_reverse_core(path_index, *core);
}

void Session::handle_reverse_core(std::size_t path_index,
                                  const ReverseCore& core) {
  if (core.type == ReverseCore::Type::kAck) {
    const std::uint64_t key = pending_key(core.message_id, core.segment_index);
    const auto it = pending_segments_.find(key);
    if (it != pending_segments_.end()) {
      router_.simulator().cancel(it->second.timeout_event);
      pending_segments_.erase(it);
    }
    // An ack on a path still pending from combined construction confirms
    // the path end to end.
    if (paths_[path_index].state == PathState::kPending) {
      paths_[path_index].state = PathState::kEstablished;
      sync_path_info(path_index);
    }
    ++acks_received_;
    if (ack_handler_) {
      ack_handler_(core.message_id, core.segment_index, path_index);
    }
    return;
  }

  // Response segment: reassemble like the responder does, keyed by
  // (message id, response id) so repeated responses are each delivered.
  const std::uint64_t response_key =
      core.message_id ^
      (static_cast<std::uint64_t>(core.response_id) * 0xff51afd7ed558ccdULL);
  auto [it, inserted] = responses_.try_emplace(response_key);
  ResponseReassembly& reassembly = it->second;
  if (inserted) {
    reassembly.needed = core.needed_segments;
    reassembly.total = core.total_segments;
    reassembly.original_size = core.original_size;
  }
  bool duplicate = false;
  for (const auto& seg : reassembly.segments) {
    if (seg.index == core.segment_index) {
      duplicate = true;
      break;
    }
  }
  if (!duplicate) {
    erasure::Segment seg;
    seg.index = core.segment_index;
    seg.data = core.segment;
    reassembly.segments.push_back(std::move(seg));
  }
  if (!reassembly.delivered &&
      reassembly.segments.size() >= reassembly.needed) {
    const auto decoded = session_codec_for(reassembly.needed, reassembly.total)
                             .decode(reassembly.segments,
                                     reassembly.original_size);
    if (decoded.has_value()) {
      reassembly.delivered = true;
      if (response_handler_) response_handler_(core.message_id, *decoded);
    }
  }
}

MessageId Session::send_message_on_demand(ByteView data) {
  const SimTime now = router_.simulator().now();

  // (Re)provision every unbuilt/failed path with fresh relays and keys;
  // their construction rides the payload message itself.
  std::vector<bool> needs_construction(paths_.size(), false);
  for (std::size_t index = 0; index < paths_.size(); ++index) {
    Path& path = paths_[index];
    if (path.state == PathState::kEstablished ||
        path.state == PathState::kPending) {
      continue;
    }
    std::vector<NodeId> exclude;
    for (std::size_t j = 0; j < paths_.size(); ++j) {
      if (j != index) {
        exclude.insert(exclude.end(), paths_[j].relays.begin(),
                       paths_[j].relays.end());
      }
    }
    auto selected = selector_.select_paths(cache_, 1, config_.path_length,
                                           now, initiator_, responder_,
                                           exclude);
    if (!selected.has_value()) continue;
    if (path.sid != 0) {
      router_.unregister_reverse_handler(initiator_, path.sid);
    }
    const std::uint64_t rebuilds = path_info_[index].rebuilds;
    path = Path{};
    path.relays = (*selected)[0];
    for (std::size_t i = 0; i < path.relays.size(); ++i) {
      path.relay_keys.push_back(crypto::random_symmetric_key(rng_));
    }
    path.responder_key = crypto::random_symmetric_key(rng_);
    path.sid = router_.new_initiator_sid(initiator_);
    path.state = PathState::kPending;
    path_info_[index].rebuilds = rebuilds;
    router_.register_reverse_handler(
        initiator_, path.sid,
        [this, index, alive = alive_](const ReverseDelivery& delivery) {
          if (!*alive) return;
          on_reverse(index, delivery);
        });
    needs_construction[index] = true;
    sync_path_info(index);
  }

  MessageId id;
  do {
    id = rng_.next_u64();
  } while (id == 0);

  const auto segments = session_codec().encode(data);
  const Allocation alloc = make_allocation();
  ++messages_sent_;
  bool sent_any = false;
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const std::size_t path_index = alloc[s];
    Path& path = paths_[path_index];
    if (path.state == PathState::kEstablished) {
      send_segment_on_path(path_index, id, segments[s], data.size());
      sent_any = true;
    } else if (path.state == PathState::kPending) {
      if (needs_construction[path_index]) {
        // First segment on this new path: combined construct + payload.
        needs_construction[path_index] = false;
        const Bytes onion_blob = router_.onion().build_path_onion(
            path.relays, path.relay_keys, responder_, router_.directory(),
            rng_);
        PayloadCore core;
        core.message_id = id;
        core.segment_index = segments[s].index;
        core.original_size = static_cast<std::uint32_t>(data.size());
        core.needed_segments = static_cast<std::uint16_t>(config_.erasure.m);
        core.total_segments = static_cast<std::uint16_t>(config_.erasure.n);
        core.segment = segments[s].data;
        core.responder_key = path.responder_key;
        Bytes blob = router_.onion().seal_payload_core(
            core, router_.directory().public_key(responder_), rng_);
        const std::uint64_t seq = path.next_seq++;
        for (std::size_t i = path.relay_keys.size(); i-- > 0;) {
          blob = router_.onion().wrap_layer(path.relay_keys[i], seq, blob);
        }
        router_.send_construct_with_payload(initiator_, path.sid,
                                            path.relays.front(), seq,
                                            onion_blob, blob);
        ++segments_sent_;
        // Track it like any pending segment: the end-to-end ack confirms
        // both the path and the delivery.
        const std::uint64_t key = pending_key(id, segments[s].index);
        PendingSegment pending;
        pending.message_id = id;
        pending.segment_index = segments[s].index;
        pending.segment = segments[s];
        pending.original_size = data.size();
        pending.path_index = path_index;
        pending.timeout_event = router_.simulator().schedule_after(
            config_.ack_timeout, [this, key, alive = alive_] {
              if (!*alive) return;
              const auto it = pending_segments_.find(key);
              if (it == pending_segments_.end()) return;
              const std::size_t failed_path = it->second.path_index;
              ++failures_detected_;
              if (config_.auto_reconstruct) {
                it->second.timeout_event = sim::kInvalidEventId;
              } else {
                pending_segments_.erase(it);
              }
              // A pending combined path that times out is simply failed.
              Path& p = paths_[failed_path];
              if (p.state == PathState::kPending) {
                p.state = PathState::kFailed;
                sync_path_info(failed_path);
                if (path_failure_handler_) path_failure_handler_(failed_path);
                if (config_.auto_reconstruct) rebuild_path(failed_path);
              } else {
                mark_path_failed(failed_path);
              }
            });
        pending_segments_[key] = std::move(pending);
        sent_any = true;
      } else {
        // Later segments follow the construct message down the same path;
        // FIFO per-hop delivery means the state is cached by the time
        // they arrive.
        send_segment_on_path(path_index, id, segments[s], data.size());
        sent_any = true;
      }
    }
  }
  return sent_any ? id : 0;
}

void Session::redirect(NodeId new_responder, RedirectHandler handler) {
  responder_ = new_responder;
  // Fresh responder keys: the old responder must not be able to read
  // traffic intended for the new one.
  for (Path& path : paths_) {
    path.responder_key = crypto::random_symmetric_key(rng_);
  }

  auto remaining = std::make_shared<std::size_t>(0);
  auto succeeded = std::make_shared<std::size_t>(0);
  auto done = std::make_shared<RedirectHandler>(std::move(handler));
  for (std::size_t index = 0; index < paths_.size(); ++index) {
    Path& path = paths_[index];
    if (path.state != PathState::kEstablished) continue;
    ++*remaining;
  }
  if (*remaining == 0) {
    (*done)(0);
    return;
  }
  for (std::size_t index = 0; index < paths_.size(); ++index) {
    Path& path = paths_[index];
    if (path.state != PathState::kEstablished) continue;
    // Layer the 4-byte destination so only the last relay can read it.
    Bytes blob;
    put_u32be(blob, new_responder);
    const std::uint64_t seq = path.next_seq++;
    for (std::size_t i = path.relay_keys.size(); i-- > 0;) {
      blob = router_.onion().wrap_layer(path.relay_keys[i], seq, blob);
    }
    router_.send_retarget(
        initiator_, path.sid, path.relays.front(), seq, std::move(blob),
        config_.construct_timeout,
        [this, index, remaining, succeeded, done,
         alive = alive_](bool ok) {
          if (!*alive) return;
          if (ok) {
            ++*succeeded;
          } else {
            mark_path_failed(index);
          }
          if (--*remaining == 0) (*done)(*succeeded);
        });
  }
}

void Session::teardown() {
  for (std::size_t index = 0; index < paths_.size(); ++index) {
    Path& path = paths_[index];
    if (path.state == PathState::kEstablished && !path.relays.empty()) {
      router_.send_teardown(initiator_, path.sid, path.relays.front());
    }
    if (path.sid != 0) {
      router_.unregister_reverse_handler(initiator_, path.sid);
    }
    path = Path{};
    sync_path_info(index);
  }
}

void Session::sync_path_info(std::size_t index) {
  path_info_[index].relays = paths_[index].relays;
  path_info_[index].state = paths_[index].state;
  path_info_[index].sid = paths_[index].sid;
}

std::vector<std::size_t> Session::usable_paths() const {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < paths_.size(); ++j) {
    if (paths_[j].state == PathState::kEstablished) out.push_back(j);
  }
  return out;
}

const erasure::Codec& Session::session_codec() {
  return session_codec_for(config_.erasure.m, config_.erasure.n);
}

const erasure::Codec& Session::session_codec_for(std::size_t m,
                                                 std::size_t n) {
  return router_.codec_for(m, n);
}

}  // namespace p2panon::anon
