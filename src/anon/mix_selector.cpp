#include "anon/mix_selector.hpp"

#include <unordered_set>

namespace p2panon::anon {

const char* to_string(MixChoice choice) {
  return choice == MixChoice::kRandom ? "random" : "biased";
}

std::optional<std::vector<std::vector<NodeId>>> MixSelector::select_paths(
    const membership::NodeCache& cache, std::size_t paths,
    std::size_t path_length, SimTime now, NodeId initiator,
    NodeId responder, const std::vector<NodeId>& extra_exclude) {
  const std::size_t need = paths * path_length;
  std::unordered_set<NodeId> exclude = {initiator, responder};
  exclude.insert(extra_exclude.begin(), extra_exclude.end());

  // Both modes honor behavioral quarantine when the cache tracks
  // suspicion (corruption resilience): a node over the quarantine
  // threshold is never selected, random or biased, until it decays clean.
  // Biased choice additionally demotes non-quarantined suspects inside
  // top_by_predictor (score = q / (1 + penalty * s)). With suspicion off
  // (the default) both calls are byte-identical to the seed behavior.
  std::vector<NodeId> picked;
  switch (choice_) {
    case MixChoice::kRandom:
      picked = cache.sample_known(need, rng_, exclude, now,
                                  /*honor_quarantine=*/true);
      break;
    case MixChoice::kBiased:
      ++biased_selects_;
      // Staleness-aware degradation: when too much of the cache is stale,
      // the Eq. 3 ranking is noise — sample uniformly instead and let the
      // bias return as repair freshens the records. The policy is off by
      // default, in which case no age scan runs and no RNG is drawn.
      if (staleness_.enabled) {
        const auto ages = cache.age_stats(now, staleness_.stale_after);
        if (ages.stale_fraction > staleness_.degrade_fraction) {
          ++stale_fallbacks_;
          picked = cache.sample_known(need, rng_, exclude, now,
                                      /*honor_quarantine=*/true);
          break;
        }
      }
      picked = cache.top_by_predictor(need, now, exclude);
      break;
  }
  if (picked.size() < need) return std::nullopt;

  // Breadth-first deal: relay slot (i, j) gets picked[i * paths + j], so
  // for biased choice the best nodes spread evenly across the k paths.
  std::vector<std::vector<NodeId>> out(paths);
  for (std::size_t j = 0; j < paths; ++j) out[j].reserve(path_length);
  for (std::size_t i = 0; i < path_length; ++i) {
    for (std::size_t j = 0; j < paths; ++j) {
      out[j].push_back(picked[i * paths + j]);
    }
  }
  return out;
}

}  // namespace p2panon::anon
