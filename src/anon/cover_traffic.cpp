#include "anon/cover_traffic.hpp"

#include <algorithm>

namespace p2panon::anon {

CoverTrafficGenerator::CoverTrafficGenerator(AnonRouter& router,
                                             CacheProvider caches,
                                             LivenessOracle is_up,
                                             std::vector<NodeId> nodes,
                                             ConfigProvider config, Rng rng,
                                             obs::Registry* metrics)
    : router_(router),
      caches_(std::move(caches)),
      is_up_(std::move(is_up)),
      nodes_(std::move(nodes)),
      config_(std::move(config)),
      rng_(rng),
      cover_messages_(metrics != nullptr
                          ? metrics->counter("anon_cover_messages_total")
                          : nullptr) {}

CoverTrafficGenerator::~CoverTrafficGenerator() {
  *alive_ = false;
  stop();
}

void CoverTrafficGenerator::start() {
  tasks_.clear();
  tasks_.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const CoverTrafficConfig cfg = config_(nodes_[i]);
    auto task = std::make_unique<sim::PeriodicTask>(
        router_.simulator(), cfg.interval, [this, i] { tick(i); });
    task->start_at(router_.simulator().now() +
                   static_cast<SimDuration>(
                       rng_.next_below(static_cast<std::uint64_t>(cfg.interval))));
    tasks_.push_back(std::move(task));
  }
}

void CoverTrafficGenerator::stop() {
  tasks_.clear();
  in_flight_.clear();
}

void CoverTrafficGenerator::tick(std::size_t index) {
  const NodeId node = nodes_[index];
  if (!is_up_(node)) return;
  const CoverTrafficConfig cfg = config_(node);

  // Random destination distinct from the sender.
  const std::size_t n = router_.directory().size();
  NodeId destination;
  do {
    destination = static_cast<NodeId>(rng_.next_below(n));
  } while (destination == node);

  SessionConfig session_config;
  session_config.path_length = cfg.path_length;
  session_config.erasure = ErasureParams::simrep(std::max<std::size_t>(1, cfg.k));
  session_config.mix_choice = MixChoice::kRandom;  // cover paths are random

  auto session = std::make_unique<Session>(router_, caches_(node), node,
                                           destination, session_config,
                                           rng_.fork());
  Session* raw = session.get();
  in_flight_.push_back(std::move(session));

  Bytes dummy(cfg.message_size);
  rng_.fill(dummy.data(), dummy.size());

  raw->construct([this, raw, dummy = std::move(dummy)](bool ok,
                                                       std::size_t) {
    if (ok) {
      raw->send_message(dummy);
      ++messages_sent_;
      if (cover_messages_ != nullptr) cover_messages_->inc();
    }
    // Retire the session shortly after: one dummy round per tick. The
    // relay states it created expire via TTL like any other path.
    static const auto kCoverEvent = obs::capacity::event_type("cover.retire");
    router_.simulator().schedule_after(
        10 * kSecond,
        [this, raw, alive = alive_] {
          if (!*alive) return;
          in_flight_.erase(
              std::remove_if(in_flight_.begin(), in_flight_.end(),
                             [raw](const std::unique_ptr<Session>& s) {
                               return s.get() == raw;
                             }),
              in_flight_.end());
        },
        kCoverEvent);
  });
}

}  // namespace p2panon::anon
