// Adaptive (k, r) control: closing the loop between the paper's §4.7
// guideline and live measurements.
//
// The paper's three observations tell an operator how to pick (k, r) given
// node availability — but availability drifts. This controller estimates
// per-path delivery success from the session's own ack stream (an EWMA of
// segment outcomes), converts it to an availability estimate via
// p = pa^L, asks analysis::advise_parameters for the cheapest (k, r) that
// meets the delivery target, and live-migrates the session when the
// recommendation changes: it builds a new path set with the new
// parameters, and only after that set is up does it tear the old one
// down (make-before-break).
#pragma once

#include <functional>
#include <memory>

#include "analysis/observations.hpp"
#include "anon/session.hpp"

namespace p2panon::anon {

struct AdaptiveConfig {
  double target_success = 0.99;  // delivery probability to maintain
  SimDuration evaluation_interval = 2 * kMinute;
  std::size_t min_observations = 16;  // outcomes before the first adaptation
  double ewma_alpha = 0.25;           // smoothing for segment outcomes
  std::size_t max_r = 4;
  std::size_t max_k = 16;
  SessionConfig session;  // timeouts, L, mix choice; erasure is managed
};

class AdaptiveSessionController {
 public:
  using ReconfigureHandler =
      std::function<void(const ErasureParams& from, const ErasureParams& to,
                         double estimated_path_success)>;

  AdaptiveSessionController(AnonRouter& router,
                            const membership::NodeCache& cache,
                            NodeId initiator, NodeId responder,
                            AdaptiveConfig config, Rng rng);
  ~AdaptiveSessionController();
  AdaptiveSessionController(const AdaptiveSessionController&) = delete;
  AdaptiveSessionController& operator=(const AdaptiveSessionController&) =
      delete;

  /// Constructs the initial session (with config.session.erasure) and
  /// starts the evaluation timer.
  void start(std::function<void(bool ok)> ready);

  /// Sends through the currently active session.
  MessageId send_message(ByteView data);

  /// Fires whenever the controller migrates to new parameters.
  void set_reconfigure_handler(ReconfigureHandler handler) {
    reconfigure_handler_ = std::move(handler);
  }

  const ErasureParams& current_parameters() const {
    return active_ ? active_->config().erasure : config_.session.erasure;
  }
  double estimated_path_success() const { return path_success_ewma_; }
  std::size_t reconfigurations() const { return reconfigurations_; }
  Session* active_session() { return active_.get(); }

 private:
  void evaluate();
  void migrate(const ErasureParams& params);
  std::unique_ptr<Session> make_session(const ErasureParams& params);

  AnonRouter& router_;
  const membership::NodeCache& cache_;
  NodeId initiator_;
  NodeId responder_;
  AdaptiveConfig config_;
  Rng rng_;

  std::unique_ptr<Session> active_;
  std::unique_ptr<Session> candidate_;  // make-before-break target
  std::unique_ptr<sim::PeriodicTask> evaluator_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  double path_success_ewma_ = 1.0;
  std::uint64_t last_segments_ = 0;
  std::uint64_t last_acks_ = 0;
  std::uint64_t observations_ = 0;
  std::size_t reconfigurations_ = 0;
  ReconfigureHandler reconfigure_handler_;
};

}  // namespace p2panon::anon
