// Initiator-side multipath session (paper §4.1, §4.2, §4.5, §4.7).
//
// A Session owns one communication relationship (initiator -> responder)
// parameterized by ErasureParams (m, n, k) and a mix choice. It:
//   * constructs the k node-disjoint onion paths, retrying with a fresh
//     relay set until the protocol's success condition holds (>= ceil(m /
//     (n/k)) paths formed) or the attempt budget is exhausted;
//   * erasure-codes outgoing messages and spreads the segments over the
//     paths (even allocation by default; the future-work weighted
//     allocation optionally);
//   * tracks per-segment end-to-end acks, declares a path failed on ack
//     timeout (§4.5), and can automatically rebuild failed paths and
//     resend their pending segments;
//   * optionally monitors relay liveness predictors and proactively
//     replaces paths whose weakest relay drops below a threshold (§4.5);
//   * reassembles coded responses arriving on the reverse paths.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "anon/allocation.hpp"
#include "anon/mix_selector.hpp"
#include "anon/router.hpp"
#include "crypto/segment_auth.hpp"
#include "membership/node_cache.hpp"
#include "obs/metrics.hpp"

namespace p2panon::anon {

struct SessionConfig {
  std::size_t path_length = 3;  // L
  ErasureParams erasure;
  MixChoice mix_choice = MixChoice::kRandom;
  SimDuration construct_timeout = 5 * kSecond;
  SimDuration ack_timeout = 5 * kSecond;
  std::size_t max_construct_attempts = 100;
  bool auto_reconstruct = false;
  bool weighted_allocation = false;   // future-work extension
  double replace_threshold = 0.0;     // > 0 enables proactive replacement
  SimDuration replace_check_interval = 30 * kSecond;

  // --- adaptive failure handling (all default OFF: with both switches
  // off, behavior, timings, and RNG draws are byte-identical to the
  // paper-reproduction configuration above) ---

  /// TCP-style per-path retransmission timers: RTO = SRTT + 4 * RTTVAR
  /// (Jacobson/Karels), clamped to [rto_min, rto_max], seeded from the
  /// construction round trip and updated from first-transmission acks
  /// (Karn's algorithm). Until the first sample, `ack_timeout` applies.
  /// Also enables segment retransmission over surviving paths: a timed-out
  /// segment is resent on the next established path (round-robin, doubled
  /// timeout per retry) up to max_segment_retries times, and a path is
  /// only declared failed after path_fail_threshold consecutive timeouts.
  bool adaptive_timeouts = false;
  SimDuration rto_min = 500 * kMillisecond;
  SimDuration rto_max = 30 * kSecond;
  std::size_t max_segment_retries = 2;
  std::size_t path_fail_threshold = 3;

  /// Exponential backoff with deterministic jitter for whole-set
  /// construction retries and per-path rebuild retries, instead of
  /// immediate retry: delay_i = min(backoff_base * 2^i, backoff_max),
  /// jittered to [delay/2, delay] from the session's own RNG stream.
  bool retry_backoff = false;
  SimDuration backoff_base = 1 * kSecond;
  SimDuration backoff_max = 60 * kSecond;

  /// Construction succeeds only once ALL k paths are established, not
  /// just min_paths() of them. Attempts that establish at least one path
  /// keep the winners and re-provision only the missing paths ("top-up")
  /// instead of the paper's whole-set retry. Off by default: partial
  /// provisioning is the paper's behavior and what the seed tests pin.
  bool require_full_construction = false;

  // --- corruption resilience (all default OFF: with every switch off,
  // behavior, the wire format, and RNG draws are byte-identical to the
  // configuration above — the responder only runs its verification paths
  // when a segment actually carries an auth trailer) ---

  /// Appends the keyed auth trailer ([flags][digest][tag]) to every
  /// outgoing segment: a 16-byte whole-message digest plus a 16-byte
  /// HMAC tag keyed from the path's responder key (crypto/segment_auth).
  /// The responder verifies each tag before admitting the segment to
  /// reconstruction, quarantines failures, and answers them with a
  /// corrupt-nack instead of an ack.
  bool segment_auth = false;
  /// Digest-only trailer ([flags][digest], no per-segment tags): the
  /// responder validates every reconstruction against the digest ballots
  /// and subset-searches around corrupted segments (erasure/
  /// verified_decode). Implied by segment_auth — tags carry the digest.
  bool verified_decode = false;
  /// Feeds corruption verdicts (corrupt-nacks) and ack-timeout stalls into
  /// the cache's behavioral-suspicion table, which biases and quarantines
  /// mix choice. Needs the cache owner to have called enable_suspicion();
  /// reports are silently dropped otherwise.
  bool relay_suspicion = false;
  double suspicion_corrupt_weight = 1.0;  // per relay, per corrupt-nack
  double suspicion_stall_weight = 0.25;   // per relay, per ack timeout
  /// Graceful degradation: a corrupt-nacked segment is retransmitted on
  /// another established path (within max_segment_retries), and a path
  /// with escalation_nack_threshold consecutive corruption verdicts is
  /// declared failed — handing it to the existing rebuild/top-up
  /// machinery, which provisions a fresh relay set (suspicion-biased when
  /// relay_suspicion is on).
  bool corruption_escalation = false;
  std::size_t escalation_nack_threshold = 3;

  // --- control-plane resilience (default OFF: with the switch off, no
  // cache-age scan runs, no extra RNG is drawn, no extra obs series is
  // registered, and selection is byte-identical to the configuration
  // above) ---

  /// Staleness-aware mix selection: biased choice degrades to the random
  /// sampler while more than `staleness_degrade_fraction` of the cache's
  /// known-alive records are older than `staleness_stale_after`, and
  /// recovers the bias as membership repair catches up (DESIGN §9).
  bool staleness_aware = false;
  SimDuration staleness_stale_after = 2 * kMinute;
  double staleness_degrade_fraction = 0.5;

  // --- overload resilience (default OFF: with max_inflight_segments == 0
  // and both switches off, no bound is checked, no congestion state is
  // consulted, and behavior, wire bytes, and RNG draws are byte-identical
  // to the configuration above) ---

  /// Bounded sender queue: send_message refuses the whole message (returns
  /// 0) when placing its n segments would push the pending-ack ledger past
  /// this many in-flight segments. 0 = unbounded, the legacy behavior.
  /// Retransmissions of already-placed segments bypass the bound — they
  /// replace ledger entries rather than adding new ones.
  std::size_t max_inflight_segments = 0;
  /// Priority-aware sender shedding: bulk messages are refused already at
  /// 3/4 of the bound, keeping headroom for interactive traffic.
  bool shed_low_priority = false;
  /// React to relay backpressure frames: a path that signalled a shed is
  /// held congested for backpressure_hold (bulk segments are not placed on
  /// it), and its ack-timeout stalls are NOT reported as suspicion
  /// evidence — an overloaded-but-honest relay must not be quarantined as
  /// byzantine.
  bool backpressure = false;
  SimDuration backpressure_hold = 2 * kSecond;
};

enum class PathState { kUnbuilt, kPending, kEstablished, kFailed };

class Session {
 public:
  using ConstructHandler = std::function<void(bool ok, std::size_t attempts)>;
  using AckHandler = std::function<void(MessageId id, std::uint32_t segment,
                                        std::size_t path_index)>;
  using ResponseHandler = std::function<void(MessageId id, Bytes data)>;
  using PathFailureHandler = std::function<void(std::size_t path_index)>;
  /// Fires when a segment is abandoned for good (timeout with no retry
  /// budget left, or drained at teardown) — the chaos harness uses it to
  /// prove every sent message is either delivered or accounted as failed.
  using SegmentExpiryHandler = std::function<void(
      MessageId id, std::uint32_t segment, std::size_t path_index)>;

  Session(AnonRouter& router, const membership::NodeCache& cache,
          NodeId initiator, NodeId responder, SessionConfig config, Rng rng);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Builds the path set asynchronously; the handler fires with the total
  /// number of whole-set attempts used.
  void construct(ConstructHandler handler);

  /// True when enough paths are established to deliver a message.
  bool ready() const;
  std::size_t established_paths() const;

  /// Erasure-codes `data` and sends the segments over the current paths.
  /// Returns the message id (0 if no path is usable, or if the bounded
  /// sender queue refused the message under overload).
  MessageId send_message(ByteView data);
  /// Same, carrying an explicit traffic class. The priority shapes relay
  /// shedding (overload mode only) and the sender-side bound; the no-arg
  /// overload sends at kInteractive, the legacy-equivalent class.
  MessageId send_message(ByteView data, SegmentPriority priority);

  /// Path reuse (§4.4): re-points every established path at a new
  /// responder WITHOUT rebuilding them (no asymmetric construction cost).
  /// Intermediate relays never learn the new destination; each path's last
  /// relay rewires its cached state and acks. The handler fires once with
  /// the number of paths successfully redirected; subsequent
  /// send_message() calls go to the new responder. Fresh responder keys
  /// are generated so the old responder cannot read future traffic.
  using RedirectHandler = std::function<void(std::size_t paths_redirected)>;
  void redirect(NodeId new_responder, RedirectHandler handler);

  /// On-demand combined construction + sending (§4.2): like
  /// send_message(), but paths that are unbuilt or failed are (re)built by
  /// the very message that carries their segment — no up-front construct()
  /// round trip and no message delay. A rebuilt path counts as established
  /// when its segment's end-to-end ack returns. Returns the message id
  /// (always nonzero: there is always at least a path being formed, as
  /// long as the cache has enough relays — 0 otherwise).
  MessageId send_message_on_demand(ByteView data);

  /// Releases relay state on every live path.
  void teardown();

  void set_ack_handler(AckHandler handler) { ack_handler_ = std::move(handler); }
  void set_response_handler(ResponseHandler handler) {
    response_handler_ = std::move(handler);
  }
  void set_path_failure_handler(PathFailureHandler handler) {
    path_failure_handler_ = std::move(handler);
  }
  void set_segment_expiry_handler(SegmentExpiryHandler handler) {
    segment_expiry_handler_ = std::move(handler);
  }

  struct PathInfo {
    std::vector<NodeId> relays;
    PathState state = PathState::kUnbuilt;
    StreamId sid = 0;
    std::uint64_t rebuilds = 0;
    // Per-path traffic tallies (survive rebuilds — they describe the slot,
    // not one incarnation). The health scoreboard windows these to detect
    // paths that are nominally established but no longer acking.
    std::uint64_t sends = 0;  // segments sent on this path slot
    std::uint64_t acks = 0;   // acks matched to segments sent on it
  };
  const std::vector<PathInfo>& paths() const { return path_info_; }

  // --- statistics ---
  std::size_t construct_attempts() const { return construct_attempts_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t segments_sent() const { return segments_sent_; }
  std::uint64_t acks_received() const { return acks_received_; }
  std::uint64_t path_failures_detected() const { return failures_detected_; }
  std::uint64_t proactive_replacements() const { return proactive_replacements_; }
  /// Corruption verdicts (ReverseCore::kCorruptNack) received from the
  /// responder across all paths. Always counted, even with every
  /// corruption-resilience knob off (a legacy session never receives any).
  std::uint64_t corrupt_nacks_received() const { return nacks_received_; }
  /// Staleness-aware selection tallies (0 unless staleness_aware): how
  /// often biased choice degraded to random because the cache was stale.
  std::uint64_t mix_stale_fallbacks() const {
    return selector_.stale_fallbacks();
  }
  std::uint64_t mix_biased_selects() const {
    return selector_.biased_selects();
  }

  // --- overload statistics (0 unless the overload knobs are on) ---
  /// Whole messages refused by the bounded sender queue (never entered
  /// the segment ledger — the caller saw message id 0).
  std::uint64_t messages_shed() const { return messages_shed_; }
  /// Segments withheld from congested paths (bulk-on-backpressure). They
  /// never entered the ledger, so the conservation identity still closes.
  std::uint64_t segments_deferred() const { return segments_deferred_; }
  /// Relay backpressure frames that reached this session. Counted even
  /// with the reaction knob off (a legacy run never receives any).
  std::uint64_t backpressure_signals() const { return backpressure_rx_; }
  /// Ack-timeout stalls NOT filed as suspicion evidence because the path
  /// had signalled overload after the segment was sent.
  std::uint64_t stalls_suppressed() const { return stalls_suppressed_; }

  // Segment ledger: every send_segment_on_path call ends in exactly one of
  // {acked, expired, retransmitted} or is still pending, so
  //   segments_sent == acks_matched + segments_expired
  //                    + segments_retransmitted + pending_segment_count
  // holds at all times — the chaos harness asserts it (no silent loss in
  // our own accounting).
  std::uint64_t acks_matched() const { return acks_matched_; }
  std::uint64_t segments_expired() const { return segments_expired_; }
  std::uint64_t segments_retransmitted() const {
    return segments_retransmitted_;
  }
  std::size_t pending_segment_count() const {
    return pending_segments_.size();
  }

  /// Current retransmission timeout for a path (the fixed ack_timeout
  /// unless adaptive mode has an RTT estimate).
  SimDuration current_rto(std::size_t path_index) const;

  NodeId initiator() const { return initiator_; }
  NodeId responder() const { return responder_; }
  const SessionConfig& config() const { return config_; }

 private:
  struct Path {
    std::vector<NodeId> relays;
    std::vector<RelayKey> relay_keys;
    RelayKey responder_key{};
    StreamId sid = 0;
    PathState state = PathState::kUnbuilt;
    std::uint64_t next_seq = 0;
  };

  struct PendingSegment {
    MessageId message_id = 0;
    std::uint32_t segment_index = 0;
    erasure::Segment segment;       // re-sendable on a rebuilt path
    std::size_t original_size = 0;
    std::size_t path_index = 0;
    sim::EventId timeout_event = sim::kInvalidEventId;
    SimTime sent_at = 0;            // RTT sampling (adaptive mode)
    std::size_t retries = 0;        // retransmissions so far (Karn)
    crypto::MessageDigest digest{};  // auth trailer for retransmits
    SegmentPriority priority = SegmentPriority::kInteractive;
  };

  /// Per-path RTT estimator and failure streaks (adaptive mode only).
  struct PathHealth {
    bool rtt_valid = false;
    double srtt_us = 0.0;
    double rttvar_us = 0.0;
    std::size_t consecutive_timeouts = 0;
    std::size_t rebuild_failures = 0;
    std::size_t consecutive_nacks = 0;  // corruption-escalation streak
  };

  void attempt_construction();
  void finish_attempt();
  void top_up_missing_paths();
  void retry_construction();
  void build_path(std::size_t index, std::function<void(bool)> done);
  void on_reverse(std::size_t path_index, const ReverseDelivery& delivery);
  void handle_reverse_core(std::size_t path_index, const ReverseCore& core);
  void send_segment_on_path(
      std::size_t path_index, MessageId message_id,
      const erasure::Segment& segment, std::size_t original_size,
      std::size_t retries = 0, const crypto::MessageDigest& digest = {},
      SegmentPriority priority = SegmentPriority::kInteractive);
  /// Relay backpressure signal arriving on a path's reverse handler.
  void on_backpressure(std::size_t path_index);
  /// Fills in the corruption-resilience trailer per the session knobs
  /// (no-op with both off, keeping the wire bytes identical to the seed).
  void apply_auth_trailer(PayloadCore& core, const Path& path,
                          const crypto::MessageDigest& digest) const;
  void report_path_suspicion(std::size_t path_index, double weight,
                             obs::Counter* evidence_ctr);
  void on_segment_timeout(std::uint64_t key, bool fail_pending_path);
  void expire_segment(std::uint64_t key);
  /// Closes the segment's "segment"/"segment_retransmit" async span (picked
  /// by its retry count) with the given outcome. No-op while tracing is off.
  void end_segment_span(const PendingSegment& seg, const char* outcome);
  void observe_rtt(std::size_t path_index, SimDuration sample);
  SimDuration backoff_delay(std::size_t failures);
  void mark_path_failed(std::size_t path_index);
  void rebuild_path(std::size_t path_index);
  void schedule_rebuild(std::size_t path_index);
  void expire_kept_pending(std::size_t path_index);
  void resend_pending(std::size_t old_path_index, std::size_t new_path_index);
  void check_predictors();
  void sync_path_info(std::size_t index);
  /// All relay selection funnels through here so the staleness tallies are
  /// mirrored into the registry regardless of which flow (construct,
  /// top-up, rebuild, proactive replace) asked.
  std::optional<std::vector<std::vector<NodeId>>> select_relays(
      std::size_t paths, SimTime now,
      const std::vector<NodeId>& extra_exclude = {});
  Allocation make_allocation() const;
  std::vector<std::size_t> usable_paths() const;
  const erasure::Codec& session_codec();
  const erasure::Codec& session_codec_for(std::size_t m, std::size_t n);

  AnonRouter& router_;
  const membership::NodeCache& cache_;
  NodeId initiator_;
  NodeId responder_;
  SessionConfig config_;
  Rng rng_;
  MixSelector selector_;

  std::vector<Path> paths_;
  std::vector<PathInfo> path_info_;
  std::vector<PathHealth> path_health_;
  // Overload/backpressure state per path slot (zeros while the knobs are
  // off; sized eagerly, no RNG). congested_until_: bulk is withheld from
  // the path until this time. last_backpressure_: suppression cutoff for
  // suspicion-neutral stall accounting.
  std::vector<SimTime> congested_until_;
  std::vector<SimTime> last_backpressure_;
  std::shared_ptr<bool> alive_;  // guards async callbacks

  // Construction state.
  ConstructHandler construct_handler_;
  std::size_t construct_attempts_ = 0;
  std::size_t attempt_outstanding_ = 0;
  bool constructing_ = false;
  bool torn_down_ = false;  // stops scheduled backoff retries
  sim::EventId construct_backoff_event_ = sim::kInvalidEventId;
  Rng backoff_rng_;  // forked from rng_ only when a new mode is on

  // Encode scratch reused across send_message calls: the codec fills it in
  // place, and send_segment_on_path copies what it must keep (payload core
  // and the pending-ack ledger), so nothing references it across events.
  std::vector<erasure::Segment> encode_scratch_;

  // Reverse-path scratch: on_reverse strips every relay layer plus the
  // responder layer in place here, so ack processing allocates nothing
  // once the buffer is warm. parse_reverse_core copies what it keeps
  // before handle_reverse_core can re-enter the send path.
  Bytes reverse_scratch_;

  // In-flight segments keyed by (message_id, segment_index).
  std::unordered_map<std::uint64_t, PendingSegment> pending_segments_;

  // Response reassembly keyed by (message id, response id) — the same
  // request can receive several distinct responses (rendezvous push).
  struct ResponseReassembly {
    std::size_t needed = 0;
    std::size_t total = 0;
    std::size_t original_size = 0;
    std::vector<erasure::Segment> segments;
    bool delivered = false;
  };
  std::unordered_map<std::uint64_t, ResponseReassembly> responses_;

  std::unique_ptr<sim::PeriodicTask> predictor_task_;

  AckHandler ack_handler_;
  ResponseHandler response_handler_;
  PathFailureHandler path_failure_handler_;
  SegmentExpiryHandler segment_expiry_handler_;

  std::uint64_t messages_sent_ = 0;
  std::uint64_t segments_sent_ = 0;
  std::uint64_t acks_received_ = 0;
  std::uint64_t acks_matched_ = 0;
  std::uint64_t segments_expired_ = 0;
  std::uint64_t segments_retransmitted_ = 0;
  std::uint64_t failures_detected_ = 0;
  std::uint64_t proactive_replacements_ = 0;
  std::uint64_t nacks_received_ = 0;
  std::uint64_t mirrored_fallbacks_ = 0;
  std::uint64_t mirrored_biased_ = 0;
  std::uint64_t messages_shed_ = 0;
  std::uint64_t segments_deferred_ = 0;
  std::uint64_t backpressure_rx_ = 0;
  std::uint64_t stalls_suppressed_ = 0;

  // Registry mirrors (resolved from the router's registry). The tallies
  // above stay the per-instance contract the seed tests assert; the series
  // are what sweeps, snapshots, and chaos invariants read.
  obs::Counter* msgs_ctr_;
  obs::Counter* construct_attempts_ctr_;
  obs::Counter* seg_sent_ctr_;
  obs::Counter* seg_retx_ctr_;
  obs::Counter* seg_acked_ctr_;
  obs::Counter* seg_expired_ctr_;
  obs::Counter* path_failures_ctr_;
  obs::Counter* nacks_rx_ctr_;
  obs::Counter* susp_corrupt_ctr_;
  obs::Counter* susp_stall_ctr_;
  obs::Gauge* quarantined_gauge_;
  obs::HdrHistogram* rtt_us_;
  obs::HdrHistogram* rto_us_;
  // Overload series (eager like the corruption counters; 0 in legacy runs).
  obs::Counter* shed_queue_ctr_;
  obs::Counter* shed_headroom_ctr_;
  obs::Counter* shed_congested_ctr_;
  obs::Counter* bp_rx_ctr_;
  obs::Counter* stall_suppressed_ctr_;
  // Null unless staleness_aware (lazy registration keeps default-off
  // registries byte-identical).
  obs::Counter* stale_fallbacks_ctr_ = nullptr;
  obs::Counter* biased_selects_ctr_ = nullptr;
};

}  // namespace p2panon::anon
