#include "anon/onion.hpp"

#include <cstring>
#include <stdexcept>

#include "crypto/aead.hpp"
#include "crypto/sealed_box.hpp"
#include "crypto/sha256.hpp"

namespace p2panon::anon {

// --- base-class in-place defaults -----------------------------------------------
//
// Correct for any codec (delegates to the allocating forms); Real and Fast
// override with genuinely allocation-free versions.

void OnionCodec::wrap_layer_in_place(const RelayKey& key, std::uint64_t seq,
                                     Bytes& buf) const {
  buf = wrap_layer(key, seq, buf);
}

bool OnionCodec::unwrap_layer_in_place(const RelayKey& key, std::uint64_t seq,
                                       Bytes& buf) const {
  auto inner = unwrap_layer(key, seq, buf);
  if (!inner.has_value()) return false;
  buf = std::move(*inner);
  return true;
}

// --- shared serialization ------------------------------------------------------

Bytes serialize_path_hop(const PathHop& hop, ByteView rest) {
  Bytes out;
  out.reserve(5 + hop.relay_key.size() + rest.size());
  put_u32be(out, hop.next);
  out.push_back(hop.last ? 1 : 0);
  append(out, ByteView(hop.relay_key.data(), hop.relay_key.size()));
  append(out, rest);
  return out;
}

std::optional<OnionCodec::PeeledPath> parse_path_hop(ByteView plain) {
  constexpr std::size_t kHeader = 4 + 1 + crypto::kChaChaKeySize;
  if (plain.size() < kHeader) return std::nullopt;
  OnionCodec::PeeledPath out;
  out.hop.next = get_u32be(plain, 0);
  const std::uint8_t last = plain[4];
  if (last > 1) return std::nullopt;
  out.hop.last = last == 1;
  std::memcpy(out.hop.relay_key.data(), plain.data() + 5,
              out.hop.relay_key.size());
  const ByteView rest = plain.subspan(kHeader);
  out.rest.assign(rest.begin(), rest.end());
  if (out.hop.last && !out.rest.empty()) return std::nullopt;
  if (!out.hop.last && out.rest.empty()) return std::nullopt;
  return out;
}

Bytes serialize_payload_core(const PayloadCore& core) {
  Bytes out;
  out.reserve(24 + core.responder_key.size() + core.segment.size() +
              (core.auth_flags != PayloadCore::kAuthNone ? 33 : 0));
  put_u64be(out, core.message_id);
  put_u32be(out, core.segment_index);
  put_u32be(out, core.original_size);
  put_u16be(out, core.needed_segments);
  put_u16be(out, core.total_segments);
  append(out, ByteView(core.responder_key.data(), core.responder_key.size()));
  put_u32be(out, static_cast<std::uint32_t>(core.segment.size()));
  append(out, core.segment);
  // Auth trailer: appended after the segment so a legacy core's bytes are
  // untouched. The trailer length is implied by auth_flags and cross-checked
  // against the exact total size at parse time.
  if (core.auth_flags != PayloadCore::kAuthNone) {
    out.push_back(core.auth_flags);
    append(out, ByteView(core.message_digest.data(),
                         core.message_digest.size()));
    if (core.auth_flags == PayloadCore::kAuthTagged) {
      append(out, ByteView(core.auth_tag.data(), core.auth_tag.size()));
    }
  }
  return out;
}

std::optional<PayloadCore> parse_payload_core(ByteView plain) {
  constexpr std::size_t kHeader = 8 + 4 + 4 + 2 + 2 + crypto::kChaChaKeySize + 4;
  if (plain.size() < kHeader) return std::nullopt;
  PayloadCore core;
  core.message_id = get_u64be(plain, 0);
  core.segment_index = get_u32be(plain, 8);
  core.original_size = get_u32be(plain, 12);
  core.needed_segments = get_u16be(plain, 16);
  core.total_segments = get_u16be(plain, 18);
  std::memcpy(core.responder_key.data(), plain.data() + 20,
              core.responder_key.size());
  const std::size_t seg_len = get_u32be(plain, 20 + crypto::kChaChaKeySize);
  // Three valid shapes, each with an exact total size: legacy (no
  // trailer), digest trailer (+17), tagged trailer (+33). The flags byte
  // must agree with the size, so no single-byte flip can move a core from
  // one shape to another — the mismatch fails parsing instead.
  constexpr std::size_t kDigestTrailer = 1 + crypto::kMessageDigestSize;
  constexpr std::size_t kTaggedTrailer = kDigestTrailer + crypto::kSegmentTagSize;
  if (plain.size() == kHeader + seg_len + kDigestTrailer ||
      plain.size() == kHeader + seg_len + kTaggedTrailer) {
    const std::uint8_t flags = plain[kHeader + seg_len];
    const bool tagged = plain.size() == kHeader + seg_len + kTaggedTrailer;
    if (flags != (tagged ? PayloadCore::kAuthTagged
                         : PayloadCore::kAuthDigest)) {
      return std::nullopt;
    }
    core.auth_flags = flags;
    std::memcpy(core.message_digest.data(),
                plain.data() + kHeader + seg_len + 1,
                core.message_digest.size());
    if (tagged) {
      std::memcpy(core.auth_tag.data(),
                  plain.data() + kHeader + seg_len + 1 +
                      core.message_digest.size(),
                  core.auth_tag.size());
    }
  } else if (plain.size() != kHeader + seg_len) {
    return std::nullopt;
  }
  // Semantic validation, not just framing: every honestly serialized core
  // satisfies the erasure layer's 1 <= m <= n <= 255 and indexes within n.
  // The statistical codec can hand us garbage that survives the length
  // check, and make_codec throws on out-of-range parameters.
  if (core.needed_segments == 0 ||
      core.needed_segments > core.total_segments ||
      core.total_segments > 255 ||
      core.segment_index >= core.total_segments) {
    return std::nullopt;
  }
  const ByteView seg = plain.subspan(kHeader, seg_len);
  core.segment.assign(seg.begin(), seg.end());
  return core;
}

// --- RealOnionCodec ---------------------------------------------------------------

Bytes RealOnionCodec::build_path_onion(const std::vector<NodeId>& relays,
                                       const std::vector<RelayKey>& relay_keys,
                                       NodeId responder,
                                       const crypto::KeyDirectory& directory,
                                       Rng& rng) const {
  if (relays.empty() || relays.size() != relay_keys.size()) {
    throw std::invalid_argument("build_path_onion: bad relay/key vectors");
  }
  Bytes blob;  // Path_{i+1}, starts as the termination marker (empty)
  for (std::size_t i = relays.size(); i-- > 0;) {
    PathHop hop;
    hop.last = (i + 1 == relays.size());
    hop.next = hop.last ? responder : relays[i + 1];
    hop.relay_key = relay_keys[i];
    const Bytes plain = serialize_path_hop(hop, blob);
    blob = crypto::sealed_box_seal(directory.public_key(relays[i]), plain,
                                   rng);
  }
  return blob;
}

std::optional<OnionCodec::PeeledPath> RealOnionCodec::peel_path_onion(
    const crypto::KeyPair& self, ByteView onion) const {
  const auto plain = crypto::sealed_box_open(self, onion);
  if (!plain.has_value()) return std::nullopt;
  return parse_path_hop(*plain);
}

Bytes RealOnionCodec::seal_payload_core(
    const PayloadCore& core, const crypto::X25519Key& responder_public,
    Rng& rng) const {
  return crypto::sealed_box_seal(responder_public,
                                 serialize_payload_core(core), rng);
}

std::optional<PayloadCore> RealOnionCodec::open_payload_core(
    const crypto::KeyPair& responder, ByteView sealed) const {
  const auto plain = crypto::sealed_box_open(responder, sealed);
  if (!plain.has_value()) return std::nullopt;
  return parse_payload_core(*plain);
}

Bytes RealOnionCodec::wrap_layer(const RelayKey& key, std::uint64_t seq,
                                 ByteView inner) const {
  return crypto::aead_seal(key, crypto::nonce_from_seq(seq), {}, inner);
}

std::optional<Bytes> RealOnionCodec::unwrap_layer(const RelayKey& key,
                                                  std::uint64_t seq,
                                                  ByteView outer) const {
  return crypto::aead_open(key, crypto::nonce_from_seq(seq), {}, outer);
}

void RealOnionCodec::wrap_layer_in_place(const RelayKey& key,
                                         std::uint64_t seq,
                                         Bytes& buf) const {
  buf.resize(buf.size() + crypto::kAeadTagSize);
  crypto::aead_seal_into(key, crypto::nonce_from_seq(seq), {}, buf);
}

bool RealOnionCodec::unwrap_layer_in_place(const RelayKey& key,
                                           std::uint64_t seq,
                                           Bytes& buf) const {
  if (buf.size() < crypto::kAeadTagSize) return false;
  if (!crypto::aead_open_into(key, crypto::nonce_from_seq(seq), {}, buf)) {
    return false;
  }
  buf.resize(buf.size() - crypto::kAeadTagSize);
  return true;
}

std::size_t RealOnionCodec::layer_overhead() const {
  return crypto::kAeadTagSize;
}

std::size_t RealOnionCodec::core_overhead() const {
  return crypto::kSealedBoxOverhead;
}

// --- FastOnionCodec ---------------------------------------------------------------
//
// Identical layouts; "encryption" is a splitmix64 keystream so the
// statistical benches spend their time in the protocol, not the cipher.

namespace {

std::uint64_t key_seed(ByteView key_material) {
  std::uint64_t seed = 0x243f6a8885a308d3ULL;
  for (std::size_t i = 0; i < key_material.size(); ++i) {
    seed = seed * 0x100000001b3ULL + key_material[i];
  }
  return seed;
}

void xor_keystream(std::uint64_t seed, MutableByteView data) {
  std::uint64_t state = seed;
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint64_t word = splitmix64(state);
    for (int b = 0; b < 8 && i < data.size(); ++b, ++i) {
      data[i] ^= static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
}

}  // namespace

Bytes FastOnionCodec::build_path_onion(const std::vector<NodeId>& relays,
                                       const std::vector<RelayKey>& relay_keys,
                                       NodeId responder,
                                       const crypto::KeyDirectory& directory,
                                       Rng& rng) const {
  if (relays.empty() || relays.size() != relay_keys.size()) {
    throw std::invalid_argument("build_path_onion: bad relay/key vectors");
  }
  Bytes blob;
  for (std::size_t i = relays.size(); i-- > 0;) {
    PathHop hop;
    hop.last = (i + 1 == relays.size());
    hop.next = hop.last ? responder : relays[i + 1];
    hop.relay_key = relay_keys[i];
    Bytes plain = serialize_path_hop(hop, blob);
    // Mimic sealed-box framing: 32 filler bytes + body + 16 filler bytes.
    const auto& pk = directory.public_key(relays[i]);
    xor_keystream(key_seed(ByteView(pk.data(), pk.size())), plain);
    Bytes boxed;
    boxed.reserve(plain.size() + crypto::kSealedBoxOverhead);
    boxed.resize(32);
    rng.fill(boxed.data(), 32);
    append(boxed, plain);
    boxed.resize(boxed.size() + 16, 0);
    blob = std::move(boxed);
  }
  return blob;
}

std::optional<OnionCodec::PeeledPath> FastOnionCodec::peel_path_onion(
    const crypto::KeyPair& self, ByteView onion) const {
  if (onion.size() < crypto::kSealedBoxOverhead) return std::nullopt;
  Bytes plain(onion.begin() + 32, onion.end() - 16);
  xor_keystream(
      key_seed(ByteView(self.public_key.data(), self.public_key.size())),
      plain);
  return parse_path_hop(plain);
}

Bytes FastOnionCodec::seal_payload_core(
    const PayloadCore& core, const crypto::X25519Key& responder_public,
    Rng& rng) const {
  Bytes plain = serialize_payload_core(core);
  xor_keystream(
      key_seed(ByteView(responder_public.data(), responder_public.size())),
      plain);
  Bytes boxed;
  boxed.resize(32);
  rng.fill(boxed.data(), 32);
  append(boxed, plain);
  boxed.resize(boxed.size() + 16, 0);
  return boxed;
}

std::optional<PayloadCore> FastOnionCodec::open_payload_core(
    const crypto::KeyPair& responder, ByteView sealed) const {
  if (sealed.size() < crypto::kSealedBoxOverhead) return std::nullopt;
  Bytes plain(sealed.begin() + 32, sealed.end() - 16);
  xor_keystream(key_seed(ByteView(responder.public_key.data(),
                                  responder.public_key.size())),
                plain);
  return parse_payload_core(plain);
}

Bytes FastOnionCodec::wrap_layer(const RelayKey& key, std::uint64_t seq,
                                 ByteView inner) const {
  Bytes out(inner.begin(), inner.end());
  xor_keystream(key_seed(ByteView(key.data(), key.size())) ^ seq, out);
  out.resize(out.size() + crypto::kAeadTagSize, 0);
  return out;
}

std::optional<Bytes> FastOnionCodec::unwrap_layer(const RelayKey& key,
                                                  std::uint64_t seq,
                                                  ByteView outer) const {
  if (outer.size() < crypto::kAeadTagSize) return std::nullopt;
  Bytes out(outer.begin(), outer.end() - crypto::kAeadTagSize);
  xor_keystream(key_seed(ByteView(key.data(), key.size())) ^ seq, out);
  return out;
}

void FastOnionCodec::wrap_layer_in_place(const RelayKey& key,
                                         std::uint64_t seq,
                                         Bytes& buf) const {
  xor_keystream(key_seed(ByteView(key.data(), key.size())) ^ seq, buf);
  buf.resize(buf.size() + crypto::kAeadTagSize, 0);
}

bool FastOnionCodec::unwrap_layer_in_place(const RelayKey& key,
                                           std::uint64_t seq,
                                           Bytes& buf) const {
  if (buf.size() < crypto::kAeadTagSize) return false;
  buf.resize(buf.size() - crypto::kAeadTagSize);
  xor_keystream(key_seed(ByteView(key.data(), key.size())) ^ seq, buf);
  return true;
}

std::size_t FastOnionCodec::layer_overhead() const {
  return crypto::kAeadTagSize;
}

std::size_t FastOnionCodec::core_overhead() const {
  return crypto::kSealedBoxOverhead;
}

}  // namespace p2panon::anon
