#include "erasure/replication.hpp"

#include <stdexcept>

namespace p2panon::erasure {

ReplicationCodec::ReplicationCodec(std::size_t copies) : copies_(copies) {
  if (copies < 1 || copies > 255) {
    throw std::invalid_argument("ReplicationCodec: need 1 <= copies <= 255");
  }
}

std::vector<Segment> ReplicationCodec::encode(ByteView message) const {
  std::vector<Segment> out;
  encode_into(message, out);
  return out;
}

void ReplicationCodec::encode_into(ByteView message,
                                   std::vector<Segment>& out) const {
  out.resize(copies_);
  for (std::size_t i = 0; i < copies_; ++i) {
    out[i].index = static_cast<std::uint32_t>(i);
    out[i].data.assign(message.begin(), message.end());
  }
}

std::optional<Bytes> ReplicationCodec::decode(
    std::span<const Segment> segments, std::size_t original_size) const {
  for (const Segment& seg : segments) {
    if (seg.index >= copies_) continue;
    if (seg.data.size() < original_size) return std::nullopt;
    Bytes out(seg.data.begin(),
              seg.data.begin() + static_cast<long>(original_size));
    return out;
  }
  return std::nullopt;
}

std::string ReplicationCodec::name() const {
  return "replication(n=" + std::to_string(copies_) + ")";
}

}  // namespace p2panon::erasure
