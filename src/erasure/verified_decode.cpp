#include "erasure/verified_decode.hpp"

#include <algorithm>

namespace p2panon::erasure {

namespace {

/// Re-encodes `message` and lists every supplied segment whose bytes do
/// not match the authentic encoding (the error-location step).
std::vector<std::uint32_t> locate_corrupted(const Codec& codec,
                                            ByteView message,
                                            std::span<const Segment> segments) {
  const std::vector<Segment> authentic = codec.encode(message);
  std::vector<std::uint32_t> corrupted;
  for (const Segment& seg : segments) {
    if (seg.index >= authentic.size() ||
        seg.data != authentic[seg.index].data) {
      corrupted.push_back(seg.index);
    }
  }
  std::sort(corrupted.begin(), corrupted.end());
  return corrupted;
}

}  // namespace

std::optional<VerifiedDecode> verified_decode(const Codec& codec,
                                              std::span<const Segment> segments,
                                              std::size_t original_size,
                                              const DecodeValidator& validate,
                                              std::size_t max_subsets) {
  const std::size_t m = codec.data_segments();
  if (segments.size() < m || max_subsets == 0) return std::nullopt;

  VerifiedDecode result;

  // Fast path: decode over everything supplied. With no corruption this is
  // the only attempt ever made.
  ++result.subsets_tried;
  if (auto decoded = codec.decode(segments, original_size);
      decoded.has_value() && validate(*decoded)) {
    result.message = std::move(*decoded);
    result.corrupted_indices = locate_corrupted(codec, result.message,
                                                segments);
    return result;
  }

  // Subset search in index-lexicographic order, independent of arrival
  // order, so the attempt sequence (and therefore the run) is
  // deterministic.
  std::vector<std::size_t> order(segments.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return segments[a].index < segments[b].index;
  });

  std::vector<std::size_t> combo(m);
  for (std::size_t i = 0; i < m; ++i) combo[i] = i;
  std::vector<Segment> subset(m);
  while (result.subsets_tried < max_subsets) {
    ++result.subsets_tried;
    for (std::size_t i = 0; i < m; ++i) subset[i] = segments[order[combo[i]]];
    if (auto decoded = codec.decode(subset, original_size);
        decoded.has_value() && validate(*decoded)) {
      result.message = std::move(*decoded);
      result.corrupted_indices = locate_corrupted(codec, result.message,
                                                  segments);
      return result;
    }
    // Next combination of m out of segments.size().
    std::size_t i = m;
    while (i-- > 0) {
      if (combo[i] + (m - i) < segments.size()) {
        ++combo[i];
        for (std::size_t j = i + 1; j < m; ++j) combo[j] = combo[j - 1] + 1;
        break;
      }
      if (i == 0) return std::nullopt;  // combinations exhausted
    }
  }
  return std::nullopt;
}

}  // namespace p2panon::erasure
