#include "erasure/matrix.hpp"

#include <sstream>
#include <stdexcept>

#include "erasure/gf256.hpp"

namespace p2panon::erasure {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("Matrix: dimensions must be positive");
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

Matrix Matrix::vandermonde(std::size_t rows, std::size_t cols) {
  if (rows > 255) {
    throw std::invalid_argument("Matrix::vandermonde: at most 255 rows");
  }
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = GF256::pow(static_cast<std::uint8_t>(r + 1),
                              static_cast<unsigned>(c));
    }
  }
  return m;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("Matrix::multiply: dimension mismatch");
  }
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const std::uint8_t a = at(r, k);
      if (a == 0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out.at(r, c) =
            GF256::add(out.at(r, c), GF256::mul(a, rhs.at(k, c)));
      }
    }
  }
  return out;
}

Matrix Matrix::select_rows(const std::vector<std::size_t>& row_indices) const {
  Matrix out(row_indices.size(), cols_);
  for (std::size_t r = 0; r < row_indices.size(); ++r) {
    if (row_indices[r] >= rows_) {
      throw std::out_of_range("Matrix::select_rows: row out of range");
    }
    for (std::size_t c = 0; c < cols_; ++c) {
      out.at(r, c) = at(row_indices[r], c);
    }
  }
  return out;
}

Matrix Matrix::augment(const Matrix& rhs) const {
  if (rows_ != rhs.rows_) {
    throw std::invalid_argument("Matrix::augment: row count mismatch");
  }
  Matrix out(rows_, cols_ + rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.at(r, c) = at(r, c);
    for (std::size_t c = 0; c < rhs.cols_; ++c) {
      out.at(r, cols_ + c) = rhs.at(r, c);
    }
  }
  return out;
}

Matrix Matrix::columns(std::size_t col_begin, std::size_t col_end) const {
  if (col_begin >= col_end || col_end > cols_) {
    throw std::out_of_range("Matrix::columns: bad range");
  }
  Matrix out(rows_, col_end - col_begin);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = col_begin; c < col_end; ++c) {
      out.at(r, c - col_begin) = at(r, c);
    }
  }
  return out;
}

bool Matrix::gaussian_elimination() {
  const std::size_t pivots = std::min(rows_, cols_);
  for (std::size_t p = 0; p < pivots; ++p) {
    // Find a pivot row.
    std::size_t pivot_row = p;
    while (pivot_row < rows_ && at(pivot_row, p) == 0) ++pivot_row;
    if (pivot_row == rows_) return false;
    if (pivot_row != p) {
      for (std::size_t c = 0; c < cols_; ++c) {
        std::swap(at(p, c), at(pivot_row, c));
      }
    }
    // Normalize the pivot row.
    const std::uint8_t inv = GF256::inv(at(p, p));
    if (inv != 1) {
      MutableByteView prow(data_.data() + p * cols_, cols_);
      GF256::mul_row(inv, prow, prow);
    }
    // Eliminate the pivot column everywhere else.
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == p) continue;
      const std::uint8_t factor = at(r, p);
      if (factor == 0) continue;
      GF256::mul_add_row(factor, row(p),
                         MutableByteView(data_.data() + r * cols_, cols_));
    }
  }
  return true;
}

Matrix Matrix::inverted() const {
  if (rows_ != cols_) {
    throw std::invalid_argument("Matrix::inverted: not square");
  }
  Matrix work = augment(identity(rows_));
  if (!work.gaussian_elimination()) {
    throw std::domain_error("Matrix::inverted: singular matrix");
  }
  return work.columns(cols_, 2 * cols_);
}

std::string Matrix::to_string() const {
  std::ostringstream out;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out << static_cast<int>(at(r, c)) << (c + 1 == cols_ ? "" : " ");
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace p2panon::erasure
