#include "erasure/gf256.hpp"

#include <cstring>
#include <stdexcept>

#if defined(__x86_64__) && defined(__GNUC__)
#define P2PANON_GF256_X86 1
#include <immintrin.h>
#else
#define P2PANON_GF256_X86 0
#endif

namespace p2panon::erasure {

namespace {

struct Tables {
  std::array<std::uint8_t, 512> exp;
  std::array<std::uint16_t, 256> log;

  Tables() {
    // Generator 2 over 0x11d: exp[i] = 2^i, log[2^i] = i.
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint16_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (int i = 255; i < 512; ++i) {
      exp[static_cast<std::size_t>(i)] = exp[static_cast<std::size_t>(i - 255)];
    }
    log[0] = 0;  // never consulted: mul/div guard zero operands
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

// Split multiplication tables: for each coefficient c, nib[c].lo[x] = c·x
// for the 16 low-nibble values and nib[c].hi[x] = c·(x << 4), so
// c·s = lo[s & 0xf] ^ hi[s >> 4] by GF(2) linearity. 32 bytes per
// coefficient (8 KiB total), the exact operand shape of PSHUFB.
struct NibTable {
  std::uint8_t lo[16];
  std::uint8_t hi[16];
};

struct MulTables {
  alignas(64) NibTable nib[256];

  MulTables() {
    // Built from carry-less (Russian peasant) multiplication so the split
    // tables are derived independently of the log/exp tables they must
    // agree with.
    auto slow_mul = [](std::uint8_t a, std::uint8_t b) {
      std::uint8_t result = 0;
      std::uint16_t aa = a;
      while (b) {
        if (b & 1) result ^= static_cast<std::uint8_t>(aa);
        aa <<= 1;
        if (aa & 0x100) aa ^= 0x11d;
        b >>= 1;
      }
      return result;
    };
    for (int c = 0; c < 256; ++c) {
      for (int x = 0; x < 16; ++x) {
        nib[c].lo[x] = slow_mul(static_cast<std::uint8_t>(c),
                                static_cast<std::uint8_t>(x));
        nib[c].hi[x] = slow_mul(static_cast<std::uint8_t>(c),
                                static_cast<std::uint8_t>(x << 4));
      }
    }
  }
};

const MulTables& mul_tables() {
  static const MulTables t;
  return t;
}

// --- Row kernel variants ----------------------------------------------------
//
// Every variant computes dst[i] (^)= c·src[i] with identical results; they
// only differ in how many bytes they shuffle per step. Acc selects between
// the accumulate (mul_add_row) and overwrite (mul_row) forms.

template <bool Acc>
void row_ref(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
             std::size_t n) {
  // The original scalar loop: one log/exp lookup pair and a branch per
  // byte. Kept as the golden reference and benchmark baseline.
  if (c == 0) {
    if constexpr (!Acc) std::memset(dst, 0, n);
    return;
  }
  const auto& exp = tables().exp;
  const auto& log = tables().log;
  const std::uint16_t log_c = log[c];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = src[i];
    if constexpr (Acc) {
      if (s != 0) dst[i] ^= exp[log_c + log[s]];
    } else {
      dst[i] = (s == 0) ? 0 : exp[log_c + log[s]];
    }
  }
}

template <bool Acc>
void row_scalar(const NibTable& t, const std::uint8_t* src, std::uint8_t* dst,
                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = src[i];
    const std::uint8_t p =
        static_cast<std::uint8_t>(t.lo[s & 0x0f] ^ t.hi[s >> 4]);
    if constexpr (Acc) {
      dst[i] ^= p;
    } else {
      dst[i] = p;
    }
  }
}

#if P2PANON_GF256_X86

template <bool Acc>
__attribute__((target("ssse3"))) void row_ssse3(const NibTable& t,
                                                const std::uint8_t* src,
                                                std::uint8_t* dst,
                                                std::size_t n) {
  const __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i lo_n = _mm_and_si128(s, mask);
    const __m128i hi_n = _mm_and_si128(_mm_srli_epi16(s, 4), mask);
    __m128i p = _mm_xor_si128(_mm_shuffle_epi8(lo, lo_n),
                              _mm_shuffle_epi8(hi, hi_n));
    if constexpr (Acc) {
      p = _mm_xor_si128(
          p, _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i)));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), p);
  }
  if (i < n) row_scalar<Acc>(t, src + i, dst + i, n - i);
}

template <bool Acc>
__attribute__((target("avx2"))) void row_avx2(const NibTable& t,
                                              const std::uint8_t* src,
                                              std::uint8_t* dst,
                                              std::size_t n) {
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i lo_n = _mm256_and_si256(s, mask);
    const __m256i hi_n = _mm256_and_si256(_mm256_srli_epi16(s, 4), mask);
    __m256i p = _mm256_xor_si256(_mm256_shuffle_epi8(lo, lo_n),
                                 _mm256_shuffle_epi8(hi, hi_n));
    if constexpr (Acc) {
      p = _mm256_xor_si256(
          p, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), p);
  }
  if (i < n) row_scalar<Acc>(t, src + i, dst + i, n - i);
}

#endif  // P2PANON_GF256_X86

using RowFn = void (*)(const NibTable&, const std::uint8_t*, std::uint8_t*,
                       std::size_t);

struct Dispatch {
  RowFn mul_add;
  RowFn mul;
  const char* name;
};

const Dispatch& dispatch() {
  static const Dispatch d = [] {
#if P2PANON_GF256_X86
    if (__builtin_cpu_supports("avx2")) {
      return Dispatch{row_avx2<true>, row_avx2<false>, "avx2"};
    }
    if (__builtin_cpu_supports("ssse3")) {
      return Dispatch{row_ssse3<true>, row_ssse3<false>, "ssse3"};
    }
#endif
    return Dispatch{row_scalar<true>, row_scalar<false>, "scalar"};
  }();
  return d;
}

void xor_row(const std::uint8_t* src, std::uint8_t* dst, std::size_t n) {
  // c == 1 fast path: plain XOR, eight bytes per step.
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void check_sizes(ByteView src, MutableByteView dst, const char* what) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument(std::string(what) + ": size mismatch");
  }
}

}  // namespace

const std::array<std::uint8_t, 512>& GF256::exp_table() {
  return tables().exp;
}

const std::array<std::uint16_t, 256>& GF256::log_table() {
  return tables().log;
}

std::uint8_t GF256::div(std::uint8_t a, std::uint8_t b) {
  if (b == 0) throw std::domain_error("GF256: division by zero");
  if (a == 0) return 0;
  return exp_table()[log_table()[a] + 255 - log_table()[b]];
}

std::uint8_t GF256::inv(std::uint8_t a) {
  if (a == 0) throw std::domain_error("GF256: inverse of zero");
  return exp_table()[255 - log_table()[a]];
}

std::uint8_t GF256::pow(std::uint8_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  // Reduce the exponent before multiplying: the nonzero elements form a
  // cyclic group of order 255, and log[a] * e wraps unsigned for e near
  // UINT_MAX, which used to land on a wrong exp index.
  const unsigned idx =
      (static_cast<unsigned>(log_table()[a]) * (e % 255u)) % 255u;
  return exp_table()[idx];
}

void GF256::mul_add_row(std::uint8_t c, ByteView src, MutableByteView dst) {
  check_sizes(src, dst, "GF256::mul_add_row");
  if (c == 0 || src.empty()) return;
  if (c == 1) {
    xor_row(src.data(), dst.data(), src.size());
    return;
  }
  dispatch().mul_add(mul_tables().nib[c], src.data(), dst.data(), src.size());
}

void GF256::mul_row(std::uint8_t c, ByteView src, MutableByteView dst) {
  check_sizes(src, dst, "GF256::mul_row");
  if (dst.empty()) return;
  if (c == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (c == 1) {
    if (dst.data() != src.data()) {
      std::memmove(dst.data(), src.data(), src.size());
    }
    return;
  }
  dispatch().mul(mul_tables().nib[c], src.data(), dst.data(), src.size());
}

const char* GF256::kernel_name() { return dispatch().name; }

// Weak-linked provenance hook: obs/export declares this weak and records the
// dispatched kernel in every --json manifest when the erasure library is in
// the binary (obs cannot depend on erasure directly — wrong layer order).
extern "C" const char* p2panon_gf256_kernel_name() {
  return GF256::kernel_name();
}

namespace gf256_detail {

bool kernel_available(Kernel k) {
  switch (k) {
    case Kernel::kRef:
    case Kernel::kScalar:
      return true;
    case Kernel::kSsse3:
#if P2PANON_GF256_X86
      return __builtin_cpu_supports("ssse3");
#else
      return false;
#endif
    case Kernel::kAvx2:
#if P2PANON_GF256_X86
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

const char* kernel_label(Kernel k) {
  switch (k) {
    case Kernel::kRef:
      return "ref";
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kSsse3:
      return "ssse3";
    case Kernel::kAvx2:
      return "avx2";
  }
  return "?";
}

namespace {

template <bool Acc>
void run_kernel(Kernel k, std::uint8_t c, ByteView src, MutableByteView dst) {
  check_sizes(src, dst, "gf256_detail row kernel");
  if (!kernel_available(k)) {
    throw std::invalid_argument("gf256_detail: kernel unavailable on host");
  }
  if (src.empty()) return;
  switch (k) {
    case Kernel::kRef:
      row_ref<Acc>(c, src.data(), dst.data(), src.size());
      return;
    case Kernel::kScalar:
      row_scalar<Acc>(mul_tables().nib[c], src.data(), dst.data(), src.size());
      return;
    case Kernel::kSsse3:
#if P2PANON_GF256_X86
      row_ssse3<Acc>(mul_tables().nib[c], src.data(), dst.data(), src.size());
#endif
      return;
    case Kernel::kAvx2:
#if P2PANON_GF256_X86
      row_avx2<Acc>(mul_tables().nib[c], src.data(), dst.data(), src.size());
#endif
      return;
  }
}

}  // namespace

void mul_add_row(Kernel k, std::uint8_t c, ByteView src, MutableByteView dst) {
  run_kernel<true>(k, c, src, dst);
}

void mul_row(Kernel k, std::uint8_t c, ByteView src, MutableByteView dst) {
  run_kernel<false>(k, c, src, dst);
}

}  // namespace gf256_detail

}  // namespace p2panon::erasure
