#include "erasure/gf256.hpp"

#include <stdexcept>

namespace p2panon::erasure {

namespace {

struct Tables {
  std::array<std::uint8_t, 512> exp;
  std::array<std::uint16_t, 256> log;

  Tables() {
    // Generator 2 over 0x11d: exp[i] = 2^i, log[2^i] = i.
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint16_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (int i = 255; i < 512; ++i) {
      exp[static_cast<std::size_t>(i)] = exp[static_cast<std::size_t>(i - 255)];
    }
    log[0] = 0;  // never consulted: mul/div guard zero operands
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

const std::array<std::uint8_t, 512>& GF256::exp_table() {
  return tables().exp;
}

const std::array<std::uint16_t, 256>& GF256::log_table() {
  return tables().log;
}

std::uint8_t GF256::div(std::uint8_t a, std::uint8_t b) {
  if (b == 0) throw std::domain_error("GF256: division by zero");
  if (a == 0) return 0;
  return exp_table()[log_table()[a] + 255 - log_table()[b]];
}

std::uint8_t GF256::inv(std::uint8_t a) {
  if (a == 0) throw std::domain_error("GF256: inverse of zero");
  return exp_table()[255 - log_table()[a]];
}

std::uint8_t GF256::pow(std::uint8_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const unsigned idx = (log_table()[a] * e) % 255;
  return exp_table()[idx];
}

void GF256::mul_add_row(std::uint8_t c, ByteView src, MutableByteView dst) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("GF256::mul_add_row: size mismatch");
  }
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] ^= src[i];
    return;
  }
  const auto& exp = exp_table();
  const auto& log = log_table();
  const std::uint16_t log_c = log[c];
  for (std::size_t i = 0; i < src.size(); ++i) {
    const std::uint8_t s = src[i];
    if (s != 0) dst[i] ^= exp[log_c + log[s]];
  }
}

void GF256::mul_row(std::uint8_t c, ByteView src, MutableByteView dst) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("GF256::mul_row: size mismatch");
  }
  if (c == 0) {
    for (auto& b : dst) b = 0;
    return;
  }
  const auto& exp = exp_table();
  const auto& log = log_table();
  const std::uint16_t log_c = log[c];
  for (std::size_t i = 0; i < src.size(); ++i) {
    const std::uint8_t s = src[i];
    dst[i] = (s == 0) ? 0 : exp[log_c + log[s]];
  }
}

}  // namespace p2panon::erasure
