// Systematic Reed–Solomon erasure codec over GF(2^8).
//
// The n x m encoding matrix is a Vandermonde matrix normalized so its top
// m x m block is the identity: segments 0..m-1 are the message verbatim
// (systematic), segments m..n-1 are parity. Any m rows of the matrix are
// linearly independent, so any m surviving segments decode by inverting the
// corresponding m x m submatrix.
//
// Data-plane shape:
//   * encode_into() writes parity straight off the (virtually zero-padded)
//     message through the split-table GF(256) kernels — no padded copy and
//     no per-call allocation once the caller reuses its segment vector;
//   * decode() prefers the m systematic segments whenever they all arrived
//     (wherever they sit in the span), so the XOR-only copy path fires as
//     often as possible;
//   * non-systematic decodes canonicalize the chosen rows to ascending
//     index and look the inverted submatrix up in a small LRU cache —
//     churn makes the same loss pattern recur across segments of a
//     session, so most decodes skip the Gaussian elimination entirely.
//
// Codec instances keep mutable scratch and the decode cache, so a single
// instance is not safe for concurrent use from multiple threads (matches
// the single-threaded simulator; parallel seed runners hold one codec per
// environment).
#pragma once

#include <cstdint>
#include <list>

#include "erasure/codec.hpp"
#include "erasure/matrix.hpp"

namespace p2panon::erasure {

class ReedSolomonCodec final : public Codec {
 public:
  /// Requires 1 <= m <= n <= 255.
  ReedSolomonCodec(std::size_t m, std::size_t n);

  std::size_t data_segments() const override { return m_; }
  std::size_t total_segments() const override { return n_; }

  std::vector<Segment> encode(ByteView message) const override;
  void encode_into(ByteView message,
                   std::vector<Segment>& out) const override;
  std::optional<Bytes> decode(std::span<const Segment> segments,
                              std::size_t original_size) const override;
  std::string name() const override;

  /// The n x m encoding matrix (exposed for tests).
  const Matrix& encoding_matrix() const { return encode_matrix_; }

  /// Decode-path observability: which branch ran and how often the
  /// decode-matrix cache short-circuited the inversion.
  struct DecodeStats {
    std::uint64_t systematic_fast_path = 0;  // all-m-systematic copies
    std::uint64_t matrix_inversions = 0;     // cache misses (Gauss-Jordan runs)
    std::uint64_t matrix_cache_hits = 0;     // reused inverted matrices
  };
  const DecodeStats& decode_stats() const { return stats_; }

  /// Distinct loss patterns remembered per codec. Sized for the paper's
  /// operating points: C(16, 8) patterns exist but churn concentrates on a
  /// handful per session epoch.
  static constexpr std::size_t kDecodeCacheCapacity = 64;

 private:
  /// Looks up (or computes and caches) inv(E[rows]) for ascending `rows`.
  const Matrix& cached_inverse(const std::vector<std::uint8_t>& rows) const;

  std::size_t m_;
  std::size_t n_;
  Matrix encode_matrix_;

  struct CacheEntry {
    std::vector<std::uint8_t> rows;  // ascending segment indices
    Matrix inverse;
  };
  // Front = most recently used. Linear scan: entries are tiny and the
  // capacity is small next to the O(m * seg_size) kernel work per decode.
  mutable std::list<CacheEntry> decode_cache_;
  mutable std::vector<std::uint8_t> rows_scratch_;
  mutable DecodeStats stats_;
};

}  // namespace p2panon::erasure
