// Systematic Reed–Solomon erasure codec over GF(2^8).
//
// The n x m encoding matrix is a Vandermonde matrix normalized so its top
// m x m block is the identity: segments 0..m-1 are the message verbatim
// (systematic), segments m..n-1 are parity. Any m rows of the matrix are
// linearly independent, so any m surviving segments decode by inverting the
// corresponding m x m submatrix.
#pragma once

#include "erasure/codec.hpp"
#include "erasure/matrix.hpp"

namespace p2panon::erasure {

class ReedSolomonCodec final : public Codec {
 public:
  /// Requires 1 <= m <= n <= 255.
  ReedSolomonCodec(std::size_t m, std::size_t n);

  std::size_t data_segments() const override { return m_; }
  std::size_t total_segments() const override { return n_; }

  std::vector<Segment> encode(ByteView message) const override;
  std::optional<Bytes> decode(std::span<const Segment> segments,
                              std::size_t original_size) const override;
  std::string name() const override;

  /// The n x m encoding matrix (exposed for tests).
  const Matrix& encoding_matrix() const { return encode_matrix_; }

 private:
  std::size_t m_;
  std::size_t n_;
  Matrix encode_matrix_;
};

}  // namespace p2panon::erasure
