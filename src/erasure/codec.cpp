#include "erasure/codec.hpp"

#include <stdexcept>

#include "erasure/reed_solomon.hpp"
#include "erasure/replication.hpp"

namespace p2panon::erasure {

std::unique_ptr<Codec> make_codec(std::size_t m, std::size_t n) {
  if (m < 1 || m > n || n > 255) {
    throw std::invalid_argument("make_codec: need 1 <= m <= n <= 255");
  }
  if (m == 1) return std::make_unique<ReplicationCodec>(n);
  return std::make_unique<ReedSolomonCodec>(m, n);
}

}  // namespace p2panon::erasure
