// Verified decode with error location (byzantine-resilient fallback).
//
// Reed-Solomon erasure decoding is oblivious to corruption: feed it m
// segments of which one was tampered with and it happily produces wrong
// bytes. When per-segment authentication tags are unavailable (or too few
// tag-verified segments survive), the decoder below recovers the original
// message anyway — as long as some m of the supplied segments are intact —
// by bounded subset search validated against a whole-message digest:
//
//   1. try the plain decode over everything supplied (the common case:
//      nothing was corrupted);
//   2. otherwise enumerate m-subsets of the supplied segments in
//      deterministic (index-lexicographic) order, decode each, and accept
//      the first candidate the validator confirms;
//   3. re-encode the accepted message and compare against every supplied
//      segment to identify exactly which ones were corrupted, so the
//      caller can attribute blame to their arrival paths.
//
// The search is bounded by `max_subsets` decode attempts: with s corrupted
// segments out of c supplied, an intact subset exists among C(c, m)
// combinations, and for the small (m, n) the protocols use the bound is
// generous. The validator is trusted; this function never returns a
// message the validator did not confirm.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "erasure/codec.hpp"

namespace p2panon::erasure {

struct VerifiedDecode {
  Bytes message;
  /// Indices (Segment::index) of supplied segments proven corrupted by
  /// re-encoding the accepted message. Empty when everything was intact.
  std::vector<std::uint32_t> corrupted_indices;
  /// Decode attempts spent (1 = the plain decode succeeded).
  std::size_t subsets_tried = 0;
};

/// Returns true when `message` is the authentic original (e.g. its digest
/// matches the one carried by the segments' auth trailers).
using DecodeValidator = std::function<bool(ByteView message)>;

std::optional<VerifiedDecode> verified_decode(const Codec& codec,
                                              std::span<const Segment> segments,
                                              std::size_t original_size,
                                              const DecodeValidator& validate,
                                              std::size_t max_subsets);

}  // namespace p2panon::erasure
