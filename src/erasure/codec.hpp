// Erasure codec interface.
//
// A codec splits a message M into `n` segments such that any `m` of them
// reconstruct M (the paper's n, m with replication factor r = n/m).
// Segment payloads have size ceil(|M|/m); the original length travels out
// of band (the protocols carry it in the payload header).
//
// Implementations:
//   - ReedSolomonCodec: systematic RS over GF(2^8) — the paper's erasure
//     coding [Rabin 1989].
//   - ReplicationCodec: the m = 1 special case ("replication can be thought
//     of as a special case of erasure coding where m = 1").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace p2panon::erasure {

struct Segment {
  std::uint32_t index = 0;  // position in [0, n)
  Bytes data;

  bool operator==(const Segment&) const = default;
};

class Codec {
 public:
  virtual ~Codec() = default;

  /// m: segments needed to reconstruct.
  virtual std::size_t data_segments() const = 0;
  /// n: segments produced.
  virtual std::size_t total_segments() const = 0;

  /// r = n / m.
  double replication_factor() const {
    return static_cast<double>(total_segments()) /
           static_cast<double>(data_segments());
  }

  /// Size of each segment for a message of `message_size` bytes.
  std::size_t segment_size(std::size_t message_size) const {
    const std::size_t m = data_segments();
    return (message_size + m - 1) / m;
  }

  /// Splits a message into n segments. The message may be empty.
  virtual std::vector<Segment> encode(ByteView message) const = 0;

  /// Like encode(), but fills `out` in place so steady-state callers (one
  /// encode per message on the session hot path) reuse the segment buffers
  /// instead of reallocating them. `out` is resized to n; its previous
  /// contents are overwritten.
  virtual void encode_into(ByteView message, std::vector<Segment>& out) const {
    out = encode(message);
  }

  /// Reconstructs the original message from >= m segments with distinct
  /// valid indices; `original_size` truncates the padding. Returns nullopt
  /// if too few distinct segments or inconsistent sizes are supplied.
  virtual std::optional<Bytes> decode(std::span<const Segment> segments,
                                      std::size_t original_size) const = 0;

  virtual std::string name() const = 0;
};

/// Builds the right codec: ReplicationCodec when m == 1, ReedSolomonCodec
/// otherwise. Requires 1 <= m <= n <= 255.
std::unique_ptr<Codec> make_codec(std::size_t m, std::size_t n);

}  // namespace p2panon::erasure
