// Replication codec: n full copies, any one reconstructs (m = 1).
//
// The paper's SimRep sends one copy of the whole message down each of the
// k paths; this codec expresses that as the m = 1 erasure-coding special
// case so SimRep and SimEra share the protocol machinery.
#pragma once

#include "erasure/codec.hpp"

namespace p2panon::erasure {

class ReplicationCodec final : public Codec {
 public:
  /// `copies` = n >= 1.
  explicit ReplicationCodec(std::size_t copies);

  std::size_t data_segments() const override { return 1; }
  std::size_t total_segments() const override { return copies_; }

  std::vector<Segment> encode(ByteView message) const override;
  void encode_into(ByteView message,
                   std::vector<Segment>& out) const override;
  std::optional<Bytes> decode(std::span<const Segment> segments,
                              std::size_t original_size) const override;
  std::string name() const override;

 private:
  std::size_t copies_;
};

}  // namespace p2panon::erasure
