#include "erasure/reed_solomon.hpp"

#include <stdexcept>
#include <unordered_set>

#include "erasure/gf256.hpp"

namespace p2panon::erasure {

namespace {

Matrix build_systematic_matrix(std::size_t m, std::size_t n) {
  // Validated here because members initialize before the constructor body.
  if (m < 1 || m > n || n > 255) {
    throw std::invalid_argument("ReedSolomonCodec: need 1 <= m <= n <= 255");
  }
  // E = V * inv(V_top): top m rows become the identity, and any m rows of E
  // remain independent because E = V * B for an invertible B.
  const Matrix vander = Matrix::vandermonde(n, m);
  std::vector<std::size_t> top(m);
  for (std::size_t i = 0; i < m; ++i) top[i] = i;
  const Matrix top_inv = vander.select_rows(top).inverted();
  return vander.multiply(top_inv);
}

}  // namespace

ReedSolomonCodec::ReedSolomonCodec(std::size_t m, std::size_t n)
    : m_(m), n_(n), encode_matrix_(build_systematic_matrix(m, n)) {
  if (m < 1 || m > n || n > 255) {
    throw std::invalid_argument("ReedSolomonCodec: need 1 <= m <= n <= 255");
  }
}

std::vector<Segment> ReedSolomonCodec::encode(ByteView message) const {
  const std::size_t seg_size = std::max<std::size_t>(segment_size(message.size()), 1);

  // Zero-pad the message to m * seg_size and view it as m shards.
  Bytes padded(message.begin(), message.end());
  padded.resize(m_ * seg_size, 0);

  std::vector<Segment> out(n_);
  for (std::size_t r = 0; r < n_; ++r) {
    out[r].index = static_cast<std::uint32_t>(r);
    out[r].data.assign(seg_size, 0);
    for (std::size_t c = 0; c < m_; ++c) {
      const std::uint8_t coeff = encode_matrix_.at(r, c);
      GF256::mul_add_row(coeff,
                         ByteView(padded.data() + c * seg_size, seg_size),
                         out[r].data);
    }
  }
  return out;
}

std::optional<Bytes> ReedSolomonCodec::decode(
    std::span<const Segment> segments, std::size_t original_size) const {
  // Collect the first m segments with distinct, in-range indices and a
  // consistent size.
  std::vector<const Segment*> chosen;
  std::unordered_set<std::uint32_t> seen;
  std::size_t seg_size = 0;
  for (const Segment& seg : segments) {
    if (seg.index >= n_) continue;
    if (!seen.insert(seg.index).second) continue;
    if (chosen.empty()) {
      seg_size = seg.data.size();
      if (seg_size == 0) return std::nullopt;
    } else if (seg.data.size() != seg_size) {
      return std::nullopt;
    }
    chosen.push_back(&seg);
    if (chosen.size() == m_) break;
  }
  if (chosen.size() < m_) return std::nullopt;
  if (original_size > m_ * seg_size) return std::nullopt;

  // Fast path: all m systematic segments present.
  bool all_systematic = true;
  for (const Segment* seg : chosen) {
    if (seg->index >= m_) {
      all_systematic = false;
      break;
    }
  }

  Bytes shards(m_ * seg_size, 0);
  if (all_systematic) {
    for (const Segment* seg : chosen) {
      std::copy(seg->data.begin(), seg->data.end(),
                shards.begin() + static_cast<long>(seg->index * seg_size));
    }
  } else {
    std::vector<std::size_t> rows(m_);
    for (std::size_t i = 0; i < m_; ++i) rows[i] = chosen[i]->index;
    const Matrix decode_matrix =
        encode_matrix_.select_rows(rows).inverted();
    for (std::size_t j = 0; j < m_; ++j) {
      MutableByteView dst(shards.data() + j * seg_size, seg_size);
      for (std::size_t i = 0; i < m_; ++i) {
        GF256::mul_add_row(decode_matrix.at(j, i), chosen[i]->data, dst);
      }
    }
  }

  shards.resize(original_size);
  return shards;
}

std::string ReedSolomonCodec::name() const {
  return "reed-solomon(m=" + std::to_string(m_) + ",n=" + std::to_string(n_) +
         ")";
}

}  // namespace p2panon::erasure
