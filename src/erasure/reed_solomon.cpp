#include "erasure/reed_solomon.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "erasure/gf256.hpp"

namespace p2panon::erasure {

namespace {

Matrix build_systematic_matrix(std::size_t m, std::size_t n) {
  // The one authoritative parameter check: members initialize before the
  // constructor body, so this is the first code that runs.
  if (m < 1 || m > n || n > 255) {
    throw std::invalid_argument("ReedSolomonCodec: need 1 <= m <= n <= 255");
  }
  // E = V * inv(V_top): top m rows become the identity, and any m rows of E
  // remain independent because E = V * B for an invertible B.
  const Matrix vander = Matrix::vandermonde(n, m);
  std::vector<std::size_t> top(m);
  for (std::size_t i = 0; i < m; ++i) top[i] = i;
  const Matrix top_inv = vander.select_rows(top).inverted();
  return vander.multiply(top_inv);
}

}  // namespace

ReedSolomonCodec::ReedSolomonCodec(std::size_t m, std::size_t n)
    : m_(m), n_(n), encode_matrix_(build_systematic_matrix(m, n)) {}

std::vector<Segment> ReedSolomonCodec::encode(ByteView message) const {
  std::vector<Segment> out;
  encode_into(message, out);
  return out;
}

void ReedSolomonCodec::encode_into(ByteView message,
                                   std::vector<Segment>& out) const {
  const std::size_t seg_size =
      std::max<std::size_t>(segment_size(message.size()), 1);

  // The message is viewed as m shards zero-padded to seg_size. The padding
  // is virtual: trailing zeros contribute nothing to any row, so every
  // kernel runs over the truncated real slice only.
  const auto shard = [&](std::size_t c) {
    const std::size_t begin = std::min(c * seg_size, message.size());
    const std::size_t end = std::min(begin + seg_size, message.size());
    return ByteView(message.data() + begin, end - begin);
  };

  out.resize(n_);
  for (std::size_t r = 0; r < n_; ++r) {
    out[r].index = static_cast<std::uint32_t>(r);
    Bytes& data = out[r].data;
    if (r < m_) {
      // Systematic row: the shard verbatim plus zero padding.
      const ByteView src = shard(r);
      data.assign(src.begin(), src.end());
      data.resize(seg_size, 0);
      continue;
    }
    data.assign(seg_size, 0);
    for (std::size_t c = 0; c < m_; ++c) {
      const std::uint8_t coeff = encode_matrix_.at(r, c);
      if (coeff == 0) continue;
      const ByteView src = shard(c);
      GF256::mul_add_row(coeff, src,
                         MutableByteView(data.data(), src.size()));
    }
  }
}

std::optional<Bytes> ReedSolomonCodec::decode(
    std::span<const Segment> segments, std::size_t original_size) const {
  // One pass over the whole span: deduplicate by index (first occurrence
  // wins) and require a consistent size across every distinct in-range
  // segment, so the chosen set can prefer systematic segments wherever
  // they sit.
  std::array<const Segment*, 256> slot{};
  std::size_t have = 0;
  std::size_t seg_size = 0;
  for (const Segment& seg : segments) {
    if (seg.index >= n_) continue;
    const Segment*& entry = slot[seg.index];
    if (entry != nullptr) continue;
    if (have == 0) {
      seg_size = seg.data.size();
      if (seg_size == 0) return std::nullopt;
    } else if (seg.data.size() != seg_size) {
      return std::nullopt;
    }
    entry = &seg;
    ++have;
  }
  if (have < m_) return std::nullopt;
  if (original_size > m_ * seg_size) return std::nullopt;

  // Fast path: all m systematic segments present — XOR-free copies.
  std::size_t systematic = 0;
  for (std::size_t i = 0; i < m_; ++i) {
    if (slot[i] != nullptr) ++systematic;
  }
  Bytes shards;
  if (systematic == m_) {
    ++stats_.systematic_fast_path;
    shards.resize(m_ * seg_size);
    for (std::size_t i = 0; i < m_; ++i) {
      std::copy(slot[i]->data.begin(), slot[i]->data.end(),
                shards.begin() + static_cast<long>(i * seg_size));
    }
    shards.resize(original_size);
    return shards;
  }

  // General path: take the first m present segments in ascending index
  // order (systematic ones first by construction, and a canonical key for
  // the decode-matrix cache).
  rows_scratch_.clear();
  for (std::size_t idx = 0; idx < n_ && rows_scratch_.size() < m_; ++idx) {
    if (slot[idx] != nullptr) {
      rows_scratch_.push_back(static_cast<std::uint8_t>(idx));
    }
  }
  const Matrix& decode_matrix = cached_inverse(rows_scratch_);

  shards.assign(m_ * seg_size, 0);
  for (std::size_t j = 0; j < m_; ++j) {
    MutableByteView dst(shards.data() + j * seg_size, seg_size);
    for (std::size_t i = 0; i < m_; ++i) {
      GF256::mul_add_row(decode_matrix.at(j, i), slot[rows_scratch_[i]]->data,
                         dst);
    }
  }
  shards.resize(original_size);
  return shards;
}

const Matrix& ReedSolomonCodec::cached_inverse(
    const std::vector<std::uint8_t>& rows) const {
  for (auto it = decode_cache_.begin(); it != decode_cache_.end(); ++it) {
    if (it->rows == rows) {
      ++stats_.matrix_cache_hits;
      decode_cache_.splice(decode_cache_.begin(), decode_cache_, it);
      return decode_cache_.front().inverse;
    }
  }
  ++stats_.matrix_inversions;
  std::vector<std::size_t> selected(rows.begin(), rows.end());
  decode_cache_.push_front(
      CacheEntry{rows, encode_matrix_.select_rows(selected).inverted()});
  if (decode_cache_.size() > kDecodeCacheCapacity) decode_cache_.pop_back();
  return decode_cache_.front().inverse;
}

std::string ReedSolomonCodec::name() const {
  return "reed-solomon(m=" + std::to_string(m_) + ",n=" + std::to_string(n_) +
         ")";
}

}  // namespace p2panon::erasure
