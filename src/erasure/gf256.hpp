// GF(2^8) arithmetic with the AES/Rabin polynomial x^8+x^4+x^3+x^2+1 (0x11d).
//
// Scalar operations (mul/div/inv/pow) go through log/exp tables built once
// at startup from the generator 2. The row kernels used by the Reed–Solomon
// codec (`mul_add_row`/`mul_row`) instead use precomputed split
// multiplication tables: for each coefficient `c`, two 16-entry nibble
// tables give `c·x = lo[x & 0xf] ^ hi[x >> 4]` with two lookups and no
// branch — the same kernel shape production RS libraries feed to PSHUFB.
// On x86-64 the kernels dispatch at runtime to AVX2 or SSSE3 shuffles when
// the CPU has them; `c == 1` takes a uint64-XOR fast path. Every variant is
// byte-identical to the scalar log/exp reference. This is the field under
// the paper's erasure coding [Rabin 1989].
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace p2panon::erasure {

class GF256 {
 public:
  static std::uint8_t add(std::uint8_t a, std::uint8_t b) { return a ^ b; }
  static std::uint8_t sub(std::uint8_t a, std::uint8_t b) { return a ^ b; }

  static std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
    if (a == 0 || b == 0) return 0;
    return exp_table()[log_table()[a] + log_table()[b]];
  }

  /// b must be nonzero.
  static std::uint8_t div(std::uint8_t a, std::uint8_t b);

  /// a must be nonzero.
  static std::uint8_t inv(std::uint8_t a);

  static std::uint8_t pow(std::uint8_t a, unsigned e);

  /// dst[i] ^= c * src[i] for all i — the row-operation kernel used by both
  /// encoding and Gaussian elimination. src and dst must have equal sizes
  /// and either not overlap or be the exact same range.
  static void mul_add_row(std::uint8_t c, ByteView src, MutableByteView dst);

  /// dst[i] = c * src[i]. Same aliasing contract as mul_add_row.
  static void mul_row(std::uint8_t c, ByteView src, MutableByteView dst);

  /// SIMD level the row kernels dispatched to: "avx2", "ssse3" or "scalar".
  static const char* kernel_name();

 private:
  // exp table doubled in length so mul can skip the mod 255.
  static const std::array<std::uint8_t, 512>& exp_table();
  static const std::array<std::uint16_t, 256>& log_table();
};

namespace gf256_detail {

/// Individual row-kernel variants, exposed so golden-vector tests can pin
/// every implementation byte-identical to the reference and benchmarks can
/// report a per-kernel throughput series. `kRef` is the original branchy
/// log/exp loop (the scalar baseline); the others are the split-table
/// kernels GF256 dispatches between.
enum class Kernel { kRef, kScalar, kSsse3, kAvx2 };

inline constexpr std::array<Kernel, 4> kAllKernels = {
    Kernel::kRef, Kernel::kScalar, Kernel::kSsse3, Kernel::kAvx2};

/// False when the host CPU cannot run the variant.
bool kernel_available(Kernel k);

const char* kernel_label(Kernel k);

/// Forces a specific variant (no c == 0/1 fast paths, so the general table
/// path itself is what runs). Requires kernel_available(k).
void mul_add_row(Kernel k, std::uint8_t c, ByteView src, MutableByteView dst);
void mul_row(Kernel k, std::uint8_t c, ByteView src, MutableByteView dst);

}  // namespace gf256_detail

}  // namespace p2panon::erasure
