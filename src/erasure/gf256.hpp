// GF(2^8) arithmetic with the AES/Rabin polynomial x^8+x^4+x^3+x^2+1 (0x11d).
//
// Multiplication and inversion go through log/exp tables built once at
// startup from the generator 2. This is the field under the Reed–Solomon
// codec implementing the paper's erasure coding [Rabin 1989].
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace p2panon::erasure {

class GF256 {
 public:
  static std::uint8_t add(std::uint8_t a, std::uint8_t b) { return a ^ b; }
  static std::uint8_t sub(std::uint8_t a, std::uint8_t b) { return a ^ b; }

  static std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
    if (a == 0 || b == 0) return 0;
    return exp_table()[log_table()[a] + log_table()[b]];
  }

  /// b must be nonzero.
  static std::uint8_t div(std::uint8_t a, std::uint8_t b);

  /// a must be nonzero.
  static std::uint8_t inv(std::uint8_t a);

  static std::uint8_t pow(std::uint8_t a, unsigned e);

  /// dst[i] ^= c * src[i] for all i — the row-operation kernel used by both
  /// encoding and Gaussian elimination.
  static void mul_add_row(std::uint8_t c, ByteView src, MutableByteView dst);

  /// dst[i] = c * src[i].
  static void mul_row(std::uint8_t c, ByteView src, MutableByteView dst);

 private:
  // exp table doubled in length so mul can skip the mod 255.
  static const std::array<std::uint8_t, 512>& exp_table();
  static const std::array<std::uint16_t, 256>& log_table();
};

}  // namespace p2panon::erasure
