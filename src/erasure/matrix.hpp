// Dense matrices over GF(2^8) with Gaussian elimination.
//
// Used to build the systematic Reed–Solomon encoding matrix (Vandermonde
// rows normalized so the top k x k block is the identity) and to invert the
// decode submatrix picked by whichever segments survived.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace p2panon::erasure {

class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols);

  static Matrix identity(std::size_t n);

  /// Vandermonde matrix V[r][c] = (r+1)^c over GF(256) (rows <= 255 for
  /// distinct evaluation points; using r+1 keeps row 0 nonzero).
  static Matrix vandermonde(std::size_t rows, std::size_t cols);

  std::uint8_t at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  std::uint8_t& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  ByteView row(std::size_t r) const {
    return ByteView(data_.data() + r * cols_, cols_);
  }

  Matrix multiply(const Matrix& rhs) const;

  /// Returns a new matrix made of the given rows of this one.
  Matrix select_rows(const std::vector<std::size_t>& row_indices) const;

  /// Returns the horizontal concatenation [this | rhs].
  Matrix augment(const Matrix& rhs) const;

  /// Returns the submatrix of columns [col_begin, col_end).
  Matrix columns(std::size_t col_begin, std::size_t col_end) const;

  /// In-place Gauss–Jordan to reduced row-echelon form. Returns false if
  /// the matrix is singular (pivot not found).
  bool gaussian_elimination();

  /// Inverse of a square matrix; throws std::domain_error if singular.
  Matrix inverted() const;

  bool operator==(const Matrix& other) const = default;

  std::string to_string() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  Bytes data_;
};

}  // namespace p2panon::erasure
